// Package hybrid simulates a horizontal hybrid DRAM/NVRAM main memory with
// hardware-driven dynamic page placement — the system design the paper's
// characterization exists to inform (§II: "for a dynamic page placement
// solution [Ramos et al.], this information is valuable because it reflects
// how the usage of memory objects changes").
//
// Both memories sit side by side behind the bus (the paper argues the
// hierarchical DRAM-cache organization fits scientific workloads poorly).
// The memory controller monitors the popularity and write intensity of
// pages over epochs, and at each epoch boundary migrates pages so that
// performance-critical and frequently-written pages live in DRAM while
// cold and read-mostly pages live in NVRAM, maximizing standby-power
// savings at bounded performance loss.  Pages start in NVRAM ("place
// memory pages in NVRAMs as much as possible", §II).
//
// The simulator consumes the cache-filtered transaction stream (it
// implements the cachesim TxSink contract) and reports the placement
// split, migration traffic, the average access latency against all-DRAM
// and all-NVRAM bounds, and an analytic power estimate combining the
// dramsim device profiles.
package hybrid

import (
	"fmt"
	"sort"

	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/trace"
)

// Config parametrizes the hybrid system.
type Config struct {
	// PageBytes is the migration granularity (default 4096).
	PageBytes int
	// DRAMBudgetPages caps how many pages the DRAM partition holds.
	DRAMBudgetPages int
	// EpochTransactions is the monitoring window length (default 100000).
	EpochTransactions int
	// WriteWeight is the extra score a write contributes relative to a
	// read when ranking pages for DRAM residency; NVRAM write latency and
	// endurance both argue for weighting writes heavily (default 4).
	WriteWeight float64
	// DRAM and NVRAM are the device profiles (defaults: DDR3 and PCRAM).
	DRAM  dramsim.DeviceProfile
	NVRAM dramsim.DeviceProfile
	// MinScore is the minimum epoch score a page needs to be considered
	// for DRAM at all; pages below it are treated as cold (default 2).
	MinScore float64
	// Hysteresis multiplies the score of pages already resident in DRAM
	// when ranking, so that a challenger must beat the incumbent by a
	// margin before a migration pays its copy cost.  Prevents ping-pong
	// between equally hot pages (default 1.5).
	Hysteresis float64
	// MaxMigrationsPerEpoch throttles promotions per epoch boundary, as
	// hardware-driven placement must: each migration occupies both
	// memories for a full page copy.  Negative disables the limit;
	// zero selects the default (64).
	MaxMigrationsPerEpoch int
}

func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.EpochTransactions == 0 {
		c.EpochTransactions = 100000
	}
	if c.WriteWeight == 0 {
		c.WriteWeight = 4
	}
	if c.DRAM.Name == "" {
		c.DRAM = dramsim.DDR3()
	}
	if c.NVRAM.Name == "" {
		c.NVRAM = dramsim.PCRAM()
	}
	if c.MinScore == 0 {
		c.MinScore = 2
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1.5
	}
	switch {
	case c.MaxMigrationsPerEpoch == 0:
		c.MaxMigrationsPerEpoch = 64
	case c.MaxMigrationsPerEpoch < 0:
		c.MaxMigrationsPerEpoch = int(^uint(0) >> 1) // unlimited
	}
	return c
}

func (c Config) validate() error {
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("hybrid: page size %d not a power of two", c.PageBytes)
	}
	if c.DRAMBudgetPages < 0 {
		return fmt.Errorf("hybrid: negative DRAM budget")
	}
	if c.EpochTransactions <= 0 {
		return fmt.Errorf("hybrid: non-positive epoch")
	}
	if c.WriteWeight < 0 {
		return fmt.Errorf("hybrid: negative write weight")
	}
	if c.Hysteresis < 1 {
		return fmt.Errorf("hybrid: hysteresis %v below 1 invites ping-pong", c.Hysteresis)
	}
	return nil
}

// Location is where a page currently resides.
type Location uint8

const (
	// InNVRAM is the initial location of every page.
	InNVRAM Location = iota
	// InDRAM marks pages promoted by the controller.
	InDRAM
)

// String names the location.
func (l Location) String() string {
	if l == InDRAM {
		return "DRAM"
	}
	return "NVRAM"
}

type page struct {
	loc Location
	// epoch counters, reset at each boundary
	epochReads, epochWrites uint64
	// lifetime counters
	reads, writes uint64
}

func (p *page) score(writeWeight float64) float64 {
	return float64(p.epochReads) + writeWeight*float64(p.epochWrites)
}

// System is the hybrid memory simulator.
type System struct {
	cfg       Config
	pageShift uint
	pages     map[uint64]*page

	txInEpoch int
	epochs    uint64

	// service counters by current residency
	dramReads, dramWrites   uint64
	nvramReads, nvramWrites uint64
	// migration accounting
	promotions uint64 // NVRAM -> DRAM
	demotions  uint64 // DRAM -> NVRAM
}

// New builds a System.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.PageBytes {
		shift++
	}
	return &System{cfg: cfg, pageShift: shift, pages: map[uint64]*page{}}, nil
}

// Transaction services one main-memory request (cachesim TxSink contract).
func (s *System) Transaction(t trace.Transaction) error {
	pn := t.Addr >> s.pageShift
	p := s.pages[pn]
	if p == nil {
		p = &page{loc: InNVRAM}
		s.pages[pn] = p
	}
	if t.Write {
		p.epochWrites++
		p.writes++
		if p.loc == InDRAM {
			s.dramWrites++
		} else {
			s.nvramWrites++
		}
	} else {
		p.epochReads++
		p.reads++
		if p.loc == InDRAM {
			s.dramReads++
		} else {
			s.nvramReads++
		}
	}
	s.txInEpoch++
	if s.txInEpoch >= s.cfg.EpochTransactions {
		s.rebalance()
	}
	return nil
}

// rebalance is the epoch-boundary migration pass: the controller ranks
// pages by popularity/write intensity and fills the DRAM budget from the
// top, exactly the hardware-driven policy of Ramos et al. that the paper
// cites.
func (s *System) rebalance() {
	s.epochs++
	s.txInEpoch = 0

	type cand struct {
		pn    uint64
		p     *page
		score float64
	}
	cands := make([]cand, 0, len(s.pages))
	for pn, p := range s.pages {
		sc := p.score(s.cfg.WriteWeight)
		if p.loc == InDRAM {
			sc *= s.cfg.Hysteresis // the incumbent's migration is sunk cost
		}
		if sc >= s.cfg.MinScore {
			cands = append(cands, cand{pn, p, sc})
		}
		p.epochReads, p.epochWrites = 0, 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].pn < cands[j].pn // deterministic tie-break
	})

	wantDRAM := map[uint64]bool{}
	for i, c := range cands {
		if i >= s.cfg.DRAMBudgetPages {
			break
		}
		wantDRAM[c.pn] = true
	}
	// Demote incumbents that fell out of the ranking (making room is
	// cheap), then promote challengers top-down under the migration
	// throttle.
	for pn, p := range s.pages {
		if !wantDRAM[pn] && p.loc == InDRAM {
			p.loc = InNVRAM
			s.demotions++
		}
	}
	promoted := 0
	for i, c := range cands {
		if i >= s.cfg.DRAMBudgetPages {
			break
		}
		if c.p.loc == InNVRAM {
			if promoted >= s.cfg.MaxMigrationsPerEpoch {
				break
			}
			c.p.loc = InDRAM
			s.promotions++
			promoted++
		}
	}
}

// Report summarizes the run.
type Report struct {
	Pages      int
	DRAMPages  int
	NVRAMPages int
	Epochs     uint64
	Promotions uint64
	Demotions  uint64

	// Service counts by residency at access time.
	DRAMReads, DRAMWrites   uint64
	NVRAMReads, NVRAMWrites uint64

	// DRAMServiceFraction is the share of all transactions served by DRAM.
	DRAMServiceFraction float64
	// NVRAMWriteShare is the share of all writes that landed in NVRAM —
	// the endurance-relevant outcome the placement minimizes.
	NVRAMWriteShare float64

	// AvgLatencyNS is the service-weighted device access latency, with the
	// all-DRAM and all-NVRAM bounds for comparison.  Migration traffic is
	// charged as one page of line reads plus line writes per migration,
	// priced at the source/destination latency.
	AvgLatencyNS      float64
	AllDRAMLatencyNS  float64
	AllNVRAMLatencyNS float64

	// BackgroundMW is the standing power of the hybrid configuration,
	// against the all-DRAM bound: the DRAM partition pays DRAM background
	// per byte, the NVRAM partition only the peripheral share.
	BackgroundMW        float64
	AllDRAMBackgroundMW float64
	// BackgroundSaving is 1 - BackgroundMW/AllDRAMBackgroundMW.
	BackgroundSaving float64
}

// Report computes the summary.
func (s *System) Report() Report {
	r := Report{Pages: len(s.pages), Epochs: s.epochs,
		Promotions: s.promotions, Demotions: s.demotions,
		DRAMReads: s.dramReads, DRAMWrites: s.dramWrites,
		NVRAMReads: s.nvramReads, NVRAMWrites: s.nvramWrites,
	}
	for _, p := range s.pages {
		if p.loc == InDRAM {
			r.DRAMPages++
		} else {
			r.NVRAMPages++
		}
	}
	total := s.dramReads + s.dramWrites + s.nvramReads + s.nvramWrites
	writes := s.dramWrites + s.nvramWrites
	if total > 0 {
		r.DRAMServiceFraction = float64(s.dramReads+s.dramWrites) / float64(total)
	}
	if writes > 0 {
		r.NVRAMWriteShare = float64(s.nvramWrites) / float64(writes)
	}

	d, n := s.cfg.DRAM, s.cfg.NVRAM
	linesPerPage := float64(s.cfg.PageBytes / 64)
	migrations := float64(s.promotions + s.demotions)
	// A promotion reads the page from NVRAM and writes it to DRAM; a
	// demotion the reverse.  Both directions cost one read + one write per
	// line; we price them with the slower device's side to stay an upper
	// bound (consistent with §IV's upper-bound stance).
	migrationNS := migrations * linesPerPage * (n.ReadLatencyNS + n.WriteLatencyNS)

	latSum := float64(s.dramReads)*d.ReadLatencyNS + float64(s.dramWrites)*d.WriteLatencyNS +
		float64(s.nvramReads)*n.ReadLatencyNS + float64(s.nvramWrites)*n.WriteLatencyNS +
		migrationNS
	if total > 0 {
		r.AvgLatencyNS = latSum / float64(total)
		r.AllDRAMLatencyNS = (float64(s.dramReads+s.nvramReads)*d.ReadLatencyNS +
			float64(writes)*d.WriteLatencyNS) / float64(total)
		r.AllNVRAMLatencyNS = (float64(s.dramReads+s.nvramReads)*n.ReadLatencyNS +
			float64(writes)*n.WriteLatencyNS) / float64(total)
	}

	// Background power by capacity share: the DRAM partition pays the full
	// DRAM background (peripheral + cell standby + refresh); the NVRAM
	// partition pays only its peripheral share.
	if len(s.pages) > 0 {
		dramFrac := float64(r.DRAMPages) / float64(len(s.pages))
		nvramFrac := 1 - dramFrac
		r.BackgroundMW = dramFrac*d.BackgroundMW() + nvramFrac*n.BackgroundMW()
		r.AllDRAMBackgroundMW = d.BackgroundMW()
		if r.AllDRAMBackgroundMW > 0 {
			r.BackgroundSaving = 1 - r.BackgroundMW/r.AllDRAMBackgroundMW
		}
	}
	return r
}
