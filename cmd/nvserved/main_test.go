package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/served"
)

// TestServeEndToEnd drives the daemon the way a client would: submit a
// sweep job over HTTP, stream its progress events, fetch the finished
// report, then shut down via context cancellation (the signal path) and
// check the drain summary and flushed metrics.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := served.NewManager(served.Config{Workers: 1})
	ctx, stop := context.WithCancel(context.Background())
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.txt")

	var out bytes.Buffer
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ctx, ln, m, time.Minute, metricsPath, &out) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"exhibits":["table1","table5"],"scale":0.05,"iterations":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || res.State != experiments.StateQueued {
		t.Fatalf("submit: status %d, state %q", resp.StatusCode, res.State)
	}

	// Stream progress until the job completes: the stream must carry at
	// least one start and one done event.
	resp, err = http.Get(base + "/jobs/" + res.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	starts, dones := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Kind {
		case "start":
			starts++
		case "done":
			dones++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if starts == 0 || dones == 0 {
		t.Fatalf("event stream: %d starts, %d dones", starts, dones)
	}

	resp, err = http.Get(base + "/jobs/" + res.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d: %s", resp.StatusCode, report)
	}
	text := string(report)
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Table V") {
		t.Errorf("served report incomplete:\n%s", text)
	}

	// Signal-path shutdown: drain and exit clean.
	stop()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("serve did not shut down")
	}
	log := out.String()
	if !strings.Contains(log, "listening on") || !strings.Contains(log, "drained: 1 jobs (1 done, 0 failed, 0 cancelled)") {
		t.Errorf("daemon log unexpected:\n%s", log)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics not flushed on shutdown: %v", err)
	}
	for _, want := range []string{"served_jobs_submitted_total", "runner_runs_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("flushed metrics missing %s", want)
		}
	}
}

// TestStateDirRestartRecovery drives the daemon's durability path end to
// end: serve with -state-dir semantics (served.Open), run a job, drain,
// then start a second daemon over the same state dir and require the job
// back — same report bytes over HTTP — plus the recovery summary in the
// log and the replay summary on /healthz.
func TestStateDirRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	spec := `{"exhibits":["table1"],"scale":0.05,"iterations":2}`

	// First daemon: submit one job, wait for its report, drain.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := served.Open(served.Config{Workers: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, stop1 := context.WithCancel(context.Background())
	var out1 bytes.Buffer
	done1 := make(chan error, 1)
	go func() { done1 <- serve(ctx1, ln1, m1, time.Minute, "", &out1) }()

	base1 := "http://" + ln1.Addr().String()
	resp, err := http.Post(base1+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	job, err := m1.Get(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer wcancel()
	if _, err := job.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(base1 + "/jobs/" + res.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d: %s", resp.StatusCode, want)
	}
	stop1()
	if err := <-done1; err != nil {
		t.Fatalf("first serve returned %v", err)
	}
	if !strings.Contains(out1.String(), "journal: 0 records replayed") {
		t.Errorf("first daemon log missing fresh-journal summary:\n%s", out1.String())
	}

	// Second daemon over the same state dir: the job must come back with
	// identical report bytes, and the log must say so.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m2, rec, err := served.Open(served.Config{Workers: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restored != 1 || !rec.CleanShutdown {
		t.Fatalf("recovery = %+v, want 1 restored from a clean shutdown", rec)
	}
	ctx2, stop2 := context.WithCancel(context.Background())
	var out2 bytes.Buffer
	done2 := make(chan error, 1)
	go func() { done2 <- serve(ctx2, ln2, m2, time.Minute, "", &out2) }()

	base2 := "http://" + ln2.Addr().String()
	resp, err = http.Get(base2 + "/jobs/" + res.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored report status = %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restored report diverged: got %d bytes, want %d", len(got), len(want))
	}

	resp, err = http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string           `json:"status"`
		Recovery *served.Recovery `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Recovery == nil || health.Recovery.Restored != 1 {
		t.Errorf("healthz after restart = %+v, want the replay summary", health)
	}

	stop2()
	if err := <-done2; err != nil {
		t.Fatalf("second serve returned %v", err)
	}
	if !strings.Contains(out2.String(), "1 jobs restored") {
		t.Errorf("second daemon log missing recovery summary:\n%s", out2.String())
	}
}

// TestRunFlagValidation: bad flags and fault specs fail before listening.
func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fault", "writer:bogus=1", "-addr", "127.0.0.1:0"}, &out); err == nil {
		t.Error("malformed -fault spec must error")
	}
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
}
