// Package fixture exercises the arena ownership protocol: every batch
// from Get must reach exactly one hand-off on every path and must not be
// touched after it.
package fixture

import (
	"errors"

	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/trace"
)

var errBoom = errors.New("boom")

// owner may hold batches: it exposes Release to hand them back.
type owner struct {
	arena   *trace.Arena[int]
	chunks  [][]int
	scratch []int
}

func (o *owner) Release() {
	for _, c := range o.chunks {
		o.arena.Put(c)
	}
	o.chunks = nil
}

// hoarder has no Release method, so it can never hand a batch back.
type hoarder struct {
	buf []int
}

// balanced is fine: Get and Put pair on the only path.
func balanced(a *trace.Arena[int]) int {
	b := a.Get()
	n := len(b)
	a.Put(b)
	return n
}

// staged is fine: the batch lands in an owning field.
func staged(o *owner) {
	o.chunks = append(o.chunks, o.arena.Get())
}

// construct is fine: an owning composite literal absorbs the batch.
func construct(a *trace.Arena[int]) *owner {
	return &owner{arena: a, scratch: a.Get()[:0]}
}

// consume recycles the batch itself, so callers may hand theirs over.
//
//nvlint:arenaown transfer
func consume(a *trace.Arena[int], b []int) {
	a.Put(b)
}

// viaTransfer is fine: the annotated callee takes ownership.
func viaTransfer(a *trace.Arena[int]) {
	b := a.Get()
	consume(a, b)
}

// deferred is fine: the Put runs on every exit path.
func deferred(a *trace.Arena[int], f func([]int)) {
	b := a.Get()
	defer a.Put(b)
	f(b)
}

// leak drops the batch: no hand-off on any path.
func leak(a *trace.Arena[int]) int {
	b := a.Get()
	return len(b)
}

// leakOnError hands the batch back only on the success path.
func leakOnError(a *trace.Arena[int], fail bool) error {
	b := a.Get()
	if fail {
		return errBoom
	}
	a.Put(b)
	return nil
}

// useAfter touches the batch after the arena may have reissued it.
func useAfter(a *trace.Arena[int]) int {
	b := a.Get()
	a.Put(b)
	return len(b)
}

// hoard stores the batch where no Release can ever reach it.
func hoard(h *hoarder, a *trace.Arena[int]) {
	h.buf = a.Get()
}

// discard throws the batch away outright.
func discard(a *trace.Arena[int]) {
	a.Get()
}

// sink is an ordinary function, not a documented transfer point.
func sink(b []int) {}

// viaPlainCall hands the batch to a callee nobody vouched for.
func viaPlainCall(a *trace.Arena[int]) {
	sink(a.Get())
}

var global []int

// toGlobal parks the batch in package state.
func toGlobal(a *trace.Arena[int]) {
	global = a.Get()
}

// deliverSafe is fine: the deferred Release covers every path.
func deliverSafe(c *pipeline.TxChunkCapture, f func([]trace.Transaction) error) error {
	defer c.Release()
	return c.Deliver(f)
}

// deliverLeak releases only on the success path: an error return leaks
// the capture's chunks out of the arena accounting.
func deliverLeak(c *pipeline.TxChunkCapture, f func([]trace.Transaction) error) error {
	if err := c.Deliver(f); err != nil {
		return err
	}
	c.Release()
	return nil
}

var (
	_ = balanced
	_ = staged
	_ = construct
	_ = viaTransfer
	_ = deferred
	_ = leak
	_ = leakOnError
	_ = useAfter
	_ = hoard
	_ = discard
	_ = viaPlainCall
	_ = toGlobal
	_ = deliverSafe
	_ = deliverLeak
)
