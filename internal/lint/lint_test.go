package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// newTestLoader returns a loader rooted at the enclosing module.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// goldenCases maps each fixture under testdata/ to the synthetic import
// path it is checked under and the passes that should fire on it.  The
// determinism and suppress fixtures opt into the deterministic package set
// through their paths; the others are scope-free.
var goldenCases = []struct {
	name   string
	path   string
	passes []string
}{
	{"determinism", "nvscavenger/internal/pipeline/lintfixture", []string{"determinism"}},
	{"metricname", "nvscavenger/internal/lintfixture/metricname", []string{"metricname"}},
	{"errcontract", "nvscavenger/internal/lintfixture/errcontract", []string{"errcontract"}},
	{"stickysink", "nvscavenger/internal/lintfixture/stickysink", []string{"stickysink"}},
	{"suppress", "nvscavenger/internal/trace/lintfixture", []string{"determinism"}},
	{"arenaown", "nvscavenger/internal/lintfixture/arenaown", []string{"arenaown"}},
	{"lockorder", "nvscavenger/internal/lintfixture/lockorder", []string{"lockorder"}},
	{"ctxflow", "nvscavenger/internal/runner/lintfixture", []string{"ctxflow"}},
}

func TestGoldenFixtures(t *testing.T) {
	loader := newTestLoader(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := loader.LoadAs(filepath.Join("testdata", tc.name), tc.path)
			if err != nil {
				t.Fatalf("LoadAs(%s): %v", tc.name, err)
			}
			suite, err := NewSuite(tc.passes...)
			if err != nil {
				t.Fatalf("NewSuite: %v", err)
			}
			var sb strings.Builder
			for _, d := range suite.Run([]*Package{pkg}) {
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()

			goldenFile := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenFile)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestSuppressionDirective pins the two behaviours the suppress fixture
// demonstrates: a well-formed //nvlint:ignore removes the finding, and a
// directive without a reason is malformed — it suppresses nothing and is
// itself reported under the "nvlint" pseudo-pass.
func TestSuppressionDirective(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadAs(filepath.Join("testdata", "suppress"), "nvscavenger/internal/trace/lintfixture")
	if err != nil {
		t.Fatalf("LoadAs: %v", err)
	}
	suite, err := NewSuite("determinism")
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	diags := suite.Run([]*Package{pkg})

	var passes []string
	for _, d := range diags {
		passes = append(passes, d.Pass)
		if strings.Contains(d.String(), "fixture.go:12") {
			t.Errorf("suppressed finding leaked through: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed finding), got %d: %v", len(diags), passes)
	}
	if diags[0].Pass != "nvlint" || !strings.Contains(diags[0].Message, "malformed ignore directive") {
		t.Errorf("want malformed-directive diagnostic first, got %s", diags[0])
	}
	if diags[1].Pass != "determinism" || diags[1].Line != 18 {
		t.Errorf("want the unsuppressed time.Now finding at line 18, got %s", diags[1])
	}
}

// TestSelfCheck runs every pass over the repository's own source and
// demands a clean bill: the tree must stay lint-clean, and any sanctioned
// exception must be visible as an allowlist entry or inline suppression.
func TestSelfCheck(t *testing.T) {
	loader := newTestLoader(t)
	pkgs, err := loader.Load(loader.Root, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	suite, err := NewSuite()
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	diags := suite.Run(pkgs)
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

func TestNewSuiteUnknownPass(t *testing.T) {
	_, err := NewSuite("nope")
	if err == nil {
		t.Fatal("want error for unknown pass")
	}
	if !strings.Contains(err.Error(), `unknown pass "nope"`) {
		t.Errorf("error should name the unknown pass: %v", err)
	}
	for _, name := range PassNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error should list known pass %q: %v", name, err)
		}
	}
}

func TestPassRegistry(t *testing.T) {
	want := []string{"arenaown", "ctxflow", "determinism", "errcontract", "lockorder", "metricname", "stickysink"}
	got := PassNames()
	if len(got) != len(want) {
		t.Fatalf("PassNames = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("PassNames = %v, want %v", got, want)
		}
		if PassDoc(name) == "" {
			t.Errorf("pass %q has no doc", name)
		}
	}
}
