package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The test session is shared: exhibits reuse the memoized app runs exactly
// as cmd/nvreport does.
var (
	sessOnce sync.Once
	sess     *Session
)

func testSession() *Session {
	sessOnce.Do(func() {
		sess = NewSession(Options{Scale: 0.25, Iterations: 10})
	})
	return sess
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || o.Iterations != 10 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestSessionMemoizes(t *testing.T) {
	s := testSession()
	r1, err := s.Fast("gtc")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Fast("gtc")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("fast runs must be memoized")
	}
}

func TestUnknownAppRejected(t *testing.T) {
	s := testSession()
	if _, err := s.Fast("nonesuch"); err == nil {
		t.Fatal("unknown app must error")
	}
	if _, err := s.Slow("nonesuch"); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestTable1FootprintOrdering(t *testing.T) {
	rows, err := testSession().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	fp := map[string]float64{}
	for _, r := range rows {
		if r.FootprintMB <= 0 {
			t.Fatalf("%s footprint = %v", r.App, r.FootprintMB)
		}
		fp[r.App] = r.FootprintMB
	}
	// Table I ordering: Nek5000 (824 MB) > CAM (608) > S3D (512) > GTC (218).
	if !(fp["nek5000"] > fp["cam"] && fp["cam"] > fp["s3d"] && fp["s3d"] > fp["gtc"]) {
		t.Errorf("footprint ordering violated: %+v", fp)
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "nek5000") || !strings.Contains(txt, "MB") {
		t.Error("Table I formatting incomplete")
	}
}

func TestTable5Shapes(t *testing.T) {
	rows, err := testSession().Table5()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ ratioLo, ratioHi, pctLo, pctHi float64 }{
		"nek5000": {5.3, 7.4, 70, 81},
		"cam":     {17, 24, 70, 82},
		"gtc":     {2.9, 4.1, 38, 50},
		"s3d":     {5.1, 7.0, 56, 70},
	}
	for _, r := range rows {
		w := want[r.App]
		if r.SteadyRatio < w.ratioLo || r.SteadyRatio > w.ratioHi {
			t.Errorf("%s steady ratio = %.2f, want [%v,%v]", r.App, r.SteadyRatio, w.ratioLo, w.ratioHi)
		}
		if r.ReferencePct < w.pctLo || r.ReferencePct > w.pctHi {
			t.Errorf("%s stack pct = %.1f, want [%v,%v]", r.App, r.ReferencePct, w.pctLo, w.pctHi)
		}
	}
	// Ordering from the paper: CAM > Nek > S3D > GTC in stack share.
	pct := map[string]float64{}
	for _, r := range rows {
		pct[r.App] = r.ReferencePct
	}
	if !(pct["cam"] > pct["gtc"] && pct["nek5000"] > pct["s3d"] && pct["s3d"] > pct["gtc"]) {
		t.Errorf("stack share ordering violated: %+v", pct)
	}
	txt := FormatTable5(rows)
	if !strings.Contains(txt, "Reference percentage") {
		t.Error("Table V formatting incomplete")
	}
	// CAM's row shows the first-iteration ratio in parentheses.
	if !strings.Contains(txt, "(") {
		t.Error("CAM first-iteration ratio missing from Table V")
	}
}

func TestFigure2Shape(t *testing.T) {
	recs, fig, err := testSession().Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 31 {
		t.Fatalf("frame records = %d, want >= 31", len(recs))
	}
	if fig.CountOver10 < 0.35 || fig.CountOver10 > 0.50 {
		t.Errorf("count over 10 = %.3f, want ~0.433", fig.CountOver10)
	}
	if fig.RefsOver10 < 0.60 || fig.RefsOver10 > 0.78 {
		t.Errorf("refs over 10 = %.3f, want ~0.689", fig.RefsOver10)
	}
	if fig.CountOver50 < 0.02 || fig.CountOver50 > 0.07 {
		t.Errorf("count over 50 = %.3f, want ~0.032", fig.CountOver50)
	}
	if fig.RefsOver50 < 0.05 || fig.RefsOver50 > 0.13 {
		t.Errorf("refs over 50 = %.3f, want ~0.089", fig.RefsOver50)
	}
	txt := FormatFigure2(recs, fig)
	if !strings.Contains(txt, "vertinterp") {
		t.Error("Figure 2 formatting incomplete")
	}
}

func TestObjectFiguresReadOnlyPopulations(t *testing.T) {
	s := testSession()
	for _, name := range AppNames {
		recs, err := s.ObjectFigure(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < 5 {
			t.Errorf("%s has only %d objects", name, len(recs))
		}
		ro := 0
		for _, r := range recs {
			if r.ReadOnly {
				ro++
			}
		}
		if ro == 0 {
			t.Errorf("%s: read-only data structures are common in all four applications (§VII-B)", name)
		}
	}
	recs, _ := s.ObjectFigure("nek5000")
	txt := FormatObjectFigure("nek5000", 3, recs)
	if !strings.Contains(txt, "read-only data") {
		t.Error("object figure formatting incomplete")
	}
}

func TestFigure7Shapes(t *testing.T) {
	cdfs, err := testSession().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nek5000", "cam", "s3d"} {
		pts := cdfs[name]
		if len(pts) != 11 {
			t.Fatalf("%s CDF has %d points, want 11", name, len(pts))
		}
	}
	frac0 := func(name string) float64 {
		pts := cdfs[name]
		total := pts[len(pts)-1].CumulativeMB
		return pts[0].CumulativeMB / total
	}
	if f := frac0("nek5000"); f < 0.18 || f > 0.30 {
		t.Errorf("nek5000 untouched fraction = %.3f, want ~0.243", f)
	}
	if f := frac0("cam"); f < 0.08 || f > 0.20 {
		t.Errorf("cam untouched fraction = %.3f, want ~0.115", f)
	}
	if f := frac0("s3d"); f > 0.06 {
		t.Errorf("s3d untouched fraction = %.3f, want small", f)
	}
	txt := FormatFigure7(cdfs)
	if !strings.Contains(txt, "iterations") {
		t.Error("Figure 7 formatting incomplete")
	}
}

func TestVarianceFiguresStability(t *testing.T) {
	s := testSession()
	// Figures 8-11: > 60% of objects in [1,2) for each app and metric.
	for _, name := range AppNames {
		ratio, rate, err := s.VarianceFigure(name)
		if err != nil {
			t.Fatal(err)
		}
		if share := stableShareOf(ratio); share < 0.6 {
			t.Errorf("%s ratio stable share = %.2f, want > 0.6", name, share)
		}
		if share := stableShareOf(rate); share < 0.6 {
			t.Errorf("%s rate stable share = %.2f, want > 0.6", name, share)
		}
	}
	ratio, rate, _ := s.VarianceFigure("s3d")
	txt := FormatVarianceFigure("s3d", 10, ratio, rate)
	if !strings.Contains(txt, "stable [1,2) share") {
		t.Error("variance figure formatting incomplete")
	}
}

func stableShareOf(dist [][]float64) float64 {
	sum, n := 0.0, 0
	for i := 1; i < len(dist); i++ {
		if len(dist[i]) > 2 {
			sum += dist[i][2]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestTable6Shape(t *testing.T) {
	rows, err := testSession().Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Normalized[0] != 1 {
			t.Errorf("%s DDR3 normalization = %v", r.App, r.Normalized[0])
		}
		for i := 1; i < 4; i++ {
			if r.Normalized[i] > 0.73 {
				t.Errorf("%s %s normalized power = %.3f, want <= 0.73 (>= 27%% saving)",
					r.App, r.Reports[i].Device, r.Normalized[i])
			}
			if r.Normalized[i] < 0.60 {
				t.Errorf("%s %s normalized power = %.3f, implausibly low",
					r.App, r.Reports[i].Device, r.Normalized[i])
			}
		}
		// The loading effect: PCRAM (slowest, least loaded) must draw the
		// least power.  STTRAM vs MRAM ordering depends on the write
		// fraction (they cross at ~25% writes), so allow a small tolerance
		// there, as the paper's own gap is under 0.02.
		if !(r.Normalized[1] <= r.Normalized[2]+1e-9 && r.Normalized[1] <= r.Normalized[3]+1e-9) {
			t.Errorf("%s: PCRAM must be the least loaded: %v", r.App, r.Normalized)
		}
		if r.Normalized[2] > r.Normalized[3]+0.01 {
			t.Errorf("%s: STTRAM exceeds MRAM by more than the tolerance: %v", r.App, r.Normalized)
		}
	}
	txt := FormatTable6(rows)
	if !strings.Contains(txt, "PCRAM") {
		t.Error("Table VI formatting incomplete")
	}
}

func TestFigure12Shape(t *testing.T) {
	rows, err := testSession().Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (Nek5000 and CAM)", len(rows))
	}
	for _, row := range rows {
		var n12, n20, n100 float64
		for _, r := range row.Results {
			switch r.MemLatencyNS {
			case 10:
				if r.Normalized != 1 {
					t.Errorf("%s baseline = %v", row.App, r.Normalized)
				}
			case 12:
				n12 = r.Normalized
			case 20:
				n20 = r.Normalized
			case 100:
				n100 = r.Normalized
			}
		}
		// §VII-E: +20% latency negligible; 2x < 5%; 10x can reach ~25%.
		if n12 > 1.02 {
			t.Errorf("%s MRAM slowdown = %.3f, want negligible (< 2%%)", row.App, n12)
		}
		if n20 > 1.05 {
			t.Errorf("%s STTRAM slowdown = %.3f, want < 5%%", row.App, n20)
		}
		if n100 > 1.30 {
			t.Errorf("%s PCRAM slowdown = %.3f, want <= ~25%%", row.App, n100)
		}
		if n100 <= n20 || n20 < n12 {
			t.Errorf("%s sweep not monotone: %v %v %v", row.App, n12, n20, n100)
		}
	}
	txt := FormatFigure12(rows)
	if !strings.Contains(txt, "normalized") {
		t.Error("Figure 12 formatting incomplete")
	}
	shape := FormatSweepShape(rows[0].Results)
	if !strings.Contains(shape, "10x latency") {
		t.Error("sweep shape formatting incomplete")
	}
}

func TestPlacementHeadline(t *testing.T) {
	plans, err := testSession().Placement()
	if err != nil {
		t.Fatal(err)
	}
	// Abstract: "In two of our applications, 31% and 27% of the memory
	// working sets are suitable for NVRAM."  Nek5000's untouched (24.3%)
	// plus read-only (7.1%) population gives ~31%; CAM's 11.5% + 15.5%
	// gives ~27%.
	nek := plans["nek5000"].NVRAMShare
	if nek < 0.26 || nek > 0.42 {
		t.Errorf("nek5000 NVRAM share = %.3f, want ~0.31", nek)
	}
	cam := plans["cam"].NVRAMShare
	if cam < 0.22 || cam > 0.40 {
		t.Errorf("cam NVRAM share = %.3f, want ~0.27", cam)
	}
	for name, p := range plans {
		if p.NVRAMBytes+p.MigratableBytes+p.DRAMBytes != p.TotalBytes {
			t.Errorf("%s: placement does not partition the footprint", name)
		}
	}
	txt := FormatPlacement(plans)
	if !strings.Contains(txt, "NVRAM share") {
		t.Error("placement formatting incomplete")
	}
}

func TestConformanceAllPass(t *testing.T) {
	checks, err := testSession().Conformance()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 40 {
		t.Fatalf("only %d checks; expected the full headline set", len(checks))
	}
	for _, c := range checks {
		if !c.Pass() {
			t.Errorf("%s / %s: measured %.3f outside [%.3f, %.3f] (paper %s)",
				c.Exhibit, c.Name, c.Measured, c.Lo, c.Hi, c.Paper)
		}
	}
	txt := FormatConformance(checks)
	if !strings.Contains(txt, "checks passed") {
		t.Error("conformance formatting incomplete")
	}
}

func TestWarmParallel(t *testing.T) {
	s := NewSession(Options{Scale: 0.05, Iterations: 2})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	// Everything the exhibits need is now memoized: these must not re-run.
	r1, err := s.Fast("gtc")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Fast("gtc")
	if r1 != r2 {
		t.Fatal("warm did not memoize")
	}
	if _, err := s.Slow("cam"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Figure2(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementComparison(t *testing.T) {
	rows, err := testSession().PlacementComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ObjectNVRAMShare < 0 || r.ObjectNVRAMShare > 1 {
			t.Errorf("%s object share = %v", r.App, r.ObjectNVRAMShare)
		}
		if r.PageNVRAMShare < 0 || r.PageNVRAMShare > 1 {
			t.Errorf("%s page share = %v", r.App, r.PageNVRAMShare)
		}
		// The central qualitative claim: object-level placement, armed with
		// the paper's per-structure metrics, exposes almost no writes to
		// NVRAM (it only places untouched/read-only/high-ratio objects).
		if r.ObjectNVRAMWriteShare > 0.05 {
			t.Errorf("%s object-plan NVRAM write exposure = %.3f, want < 0.05",
				r.App, r.ObjectNVRAMWriteShare)
		}
		if r.DRAMBudgetPages <= 0 {
			t.Errorf("%s budget = %d", r.App, r.DRAMBudgetPages)
		}
	}
	txt := FormatPlacementComparison(rows)
	if !strings.Contains(txt, "granularity") {
		t.Error("formatting incomplete")
	}
}

func TestHybridSweepExhibit(t *testing.T) {
	pts, err := testSession().HybridSweep("nek5000", []int{0, 32, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Report.DRAMPages != 0 {
		t.Error("zero budget must keep everything in NVRAM")
	}
	// More DRAM cannot hurt latency (after migrations settle) and cannot
	// raise the NVRAM write share.
	if pts[2].Report.NVRAMWriteShare > pts[0].Report.NVRAMWriteShare {
		t.Errorf("write share rose with budget: %v -> %v",
			pts[0].Report.NVRAMWriteShare, pts[2].Report.NVRAMWriteShare)
	}
	if pts[2].Report.BackgroundSaving > pts[0].Report.BackgroundSaving {
		t.Error("background saving must shrink as the DRAM partition grows")
	}
	txt := FormatHybridSweep("nek5000", pts)
	if !strings.Contains(txt, "budget sweep") {
		t.Error("formatting incomplete")
	}
}

func TestCheckpointStudyExhibit(t *testing.T) {
	pts, err := testSession().CheckpointStudy("nek5000", []int{1000, 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	peta, exa := pts[0], pts[1]
	if peta.Results[0].Efficiency < 0.9 {
		t.Errorf("petascale PFS efficiency = %v", peta.Results[0].Efficiency)
	}
	if exa.Results[0].Efficiency > 0.5 {
		t.Errorf("exascale PFS efficiency = %v, expected collapse", exa.Results[0].Efficiency)
	}
	if exa.Results[1].Efficiency < 0.8 {
		t.Errorf("exascale NVRAM efficiency = %v", exa.Results[1].Efficiency)
	}
	txt := FormatCheckpointStudy("nek5000", pts)
	if !strings.Contains(txt, "Checkpoint/restart") {
		t.Error("formatting incomplete")
	}
}

func TestWearStudyExhibit(t *testing.T) {
	rows, err := testSession().WearStudy("gtc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 streams x 2 schemes)", len(rows))
	}
	// On the skewed stream, Start-Gap must multiply lifetime.
	var skewStatic, skewSG float64
	for _, r := range rows {
		if r.Stream == "skewed hot-spot" {
			if r.Scheme.String() == "static" {
				skewStatic = r.Lifetime
			} else {
				skewSG = r.Lifetime
			}
		}
	}
	if skewSG < skewStatic*3 {
		t.Errorf("start-gap lifetime %v should be >= 3x static %v on the skewed stream",
			skewSG, skewStatic)
	}
	txt := FormatWearStudy("gtc", rows)
	if !strings.Contains(txt, "Wear leveling") {
		t.Error("formatting incomplete")
	}
}

func TestSamplingStudy(t *testing.T) {
	rows, err := testSession().SamplingStudy("nek5000", []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fullRow, sampled := rows[0], rows[1]
	if fullRow.LostObjects != 0 || fullRow.PlacementDiffs != 0 || fullRow.StackRatioError != 0 {
		t.Fatalf("period 1 must be lossless: %+v", fullRow)
	}
	if sampled.ObservedRefs*32 > fullRow.ObservedRefs {
		t.Fatalf("1/64 sampling observed too much: %d of %d", sampled.ObservedRefs, fullRow.ObservedRefs)
	}
	if sampled.LostObjects == 0 {
		t.Error("sampling must lose objects (§III-D)")
	}
	txt := FormatSamplingStudy("nek5000", rows)
	if !strings.Contains(txt, "Sampling study") {
		t.Error("formatting incomplete")
	}
}
