package pipeline

import (
	"errors"
	"testing"

	"nvscavenger/internal/obs"
	"nvscavenger/internal/resilience"
)

// flakyStage fails its first failN flushes, then succeeds.
type flakyStage struct {
	failN   int
	calls   int
	flushed int
}

func (s *flakyStage) Flush(batch []int) error {
	s.calls++
	if s.calls <= s.failN {
		return errors.New("transient stage failure")
	}
	s.flushed += len(batch)
	return nil
}

// TestResilientRetryRecovers: a transient stage failure is absorbed by the
// retry budget; the batch arrives and the retry count lands in the
// registry.
func TestResilientRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	next := &flakyStage{failN: 2}
	st := Resilient[int](reg, "tx", resilience.RetryPolicy{Attempts: 3}, nil, next)
	if err := st.Flush([]int{1, 2, 3}); err != nil {
		t.Fatalf("retry budget must absorb the failures: %v", err)
	}
	if next.flushed != 3 {
		t.Fatalf("flushed = %d, want 3", next.flushed)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("pipeline_retries_total", obs.L("stage", "tx")); v != 2 {
		t.Fatalf("pipeline_retries_total = %d, want 2", v)
	}
	if v, _ := snap.Counter("pipeline_dropped_events_total", obs.L("stage", "tx")); v != 0 {
		t.Fatalf("pipeline_dropped_events_total = %d, want 0", v)
	}
}

// TestResilientWithoutBreakerPropagates: pure-retry mode (nil breaker)
// propagates an exhausted error upstream.
func TestResilientWithoutBreakerPropagates(t *testing.T) {
	next := &flakyStage{failN: 1 << 30}
	st := Resilient[int](nil, "tx", resilience.RetryPolicy{Attempts: 2}, nil, next)
	if err := st.Flush([]int{1}); err == nil {
		t.Fatal("exhausted retries with no breaker must propagate")
	}
	if next.calls != 2 {
		t.Fatalf("calls = %d, want 2", next.calls)
	}
}

// TestResilientBreakerDegrades walks the full degradation sequence with
// FailureThreshold=1, Cooldown=2 against a permanently dead stage:
//
//	flush 1  →  stage fails, breaker trips (trip #1), batch dropped
//	flush 2-3 → rejected during cooldown, batches dropped
//	flush 4  →  half-open probe, stage fails again (trip #2)
//	flush 5  →  rejected (new cooldown)
//
// Every error is absorbed — the producer never sees a failure — and the
// registry accounts for both trips and all dropped events.
func TestResilientBreakerDegrades(t *testing.T) {
	reg := obs.NewRegistry()
	next := &flakyStage{failN: 1 << 30}
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 1, Cooldown: 2})
	st := Resilient[int](reg, "tx", resilience.RetryPolicy{}, br, next)

	for i := 1; i <= 5; i++ {
		if err := st.Flush([]int{i, i}); err != nil {
			t.Fatalf("flush %d: breaker mode must absorb errors: %v", i, err)
		}
	}
	if next.calls != 2 {
		t.Fatalf("stage calls = %d, want 2 (first failure + half-open probe)", next.calls)
	}
	if br.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", br.Trips())
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("pipeline_trips_total", obs.L("stage", "tx")); v != 2 {
		t.Fatalf("pipeline_trips_total = %d, want 2", v)
	}
	if v, _ := snap.Counter("pipeline_dropped_events_total", obs.L("stage", "tx")); v != 10 {
		t.Fatalf("pipeline_dropped_events_total = %d, want 10 (all five 2-event batches)", v)
	}
}

// TestResilientBreakerProbeSuccessResumes: a stage that heals before the
// probe resumes normal flow — post-recovery batches flow through.
func TestResilientBreakerProbeSuccessResumes(t *testing.T) {
	next := &flakyStage{failN: 1} // only the first flush fails
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 1, Cooldown: 1})
	st := Resilient[int](nil, "tx", resilience.RetryPolicy{}, br, next)

	_ = st.Flush([]int{1}) // fails, trips
	_ = st.Flush([]int{2}) // rejected (cooldown)
	if err := st.Flush([]int{3, 4}); err != nil {
		t.Fatalf("probe flush: %v", err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("state = %v, want closed after successful probe", br.State())
	}
	if err := st.Flush([]int{5}); err != nil {
		t.Fatalf("post-recovery flush: %v", err)
	}
	if next.flushed != 3 {
		t.Fatalf("flushed = %d, want 3 (probe batch + recovered batch)", next.flushed)
	}
}
