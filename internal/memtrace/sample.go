package memtrace

// Sampled tracing (§III-D revisited).
//
// The paper rejects instruction sampling for NV-SCAVENGER because "sampling
// can lead to the loss of access information for many memory objects".  This
// file makes that loss a measured quantity instead of a verdict: the tracer
// can observe a seeded, deterministic subset of the reference stream and an
// Estimator rescales the sampled per-object counters into unbiased estimates
// of the true values — the PerfectProfiler-vs-sampled-profiler relative-error
// methodology of felixge/alloc-prof-sim, pushed into the tracer itself.
//
// Three selection disciplines are provided:
//
//   - SamplePeriodic: the legacy modulo gate, every Rate-th reference.
//     Cheap and deterministic, but phase-locks with strided loops.
//   - SampleBernoulli: each reference is observed independently with
//     probability 1/Rate, drawn from a seeded xorshift64* PRNG.  No phase
//     artifacts; observation counts are binomial.
//   - SampleBytes: heap-sampler-style byte-threshold selection — a
//     reference is observed whenever the accumulated accessed bytes cross
//     a randomized threshold with mean Rate bytes (uniform jitter in
//     [1, 2*Rate), seeded).  Large objects are found quickly even at
//     aggressive rates; the observation weight is Rate bytes.
//
// Whatever the discipline, instructions retire for every reference and the
// performance-event gap accounting stays exact: a sampled-out reference is
// retired-but-unobserved, so it accumulates into the gap of the next
// observed event (sum of gaps + observed events + the pending tail ==
// retired instructions at any rate).
import (
	"fmt"
	"strconv"
	"strings"
)

// SampleMode selects the reference-selection discipline of a sampled run.
type SampleMode uint8

const (
	// SampleOff observes every reference (the paper's choice).
	SampleOff SampleMode = iota
	// SamplePeriodic observes every Rate-th reference (modulo gate).
	SamplePeriodic
	// SampleBernoulli observes each reference with probability 1/Rate.
	SampleBernoulli
	// SampleBytes observes a reference each time the accumulated accessed
	// bytes cross a randomized threshold with mean Rate bytes.
	SampleBytes
)

// String names the mode; it is the canonical spec vocabulary.
func (m SampleMode) String() string {
	switch m {
	case SamplePeriodic:
		return "period"
	case SampleBernoulli:
		return "bernoulli"
	case SampleBytes:
		return "bytes"
	}
	return "off"
}

// ParseSampleMode inverts SampleMode.String.
func ParseSampleMode(s string) (SampleMode, error) {
	switch s {
	case "", "off":
		return SampleOff, nil
	case "period", "periodic":
		return SamplePeriodic, nil
	case "bernoulli":
		return SampleBernoulli, nil
	case "bytes":
		return SampleBytes, nil
	}
	return SampleOff, fmt.Errorf("memtrace: unknown sample mode %q (off, period, bernoulli or bytes)", s)
}

// SampleSpec is the serializable identity of one sampled-tracing
// configuration: the selection discipline, its rate and the PRNG seed.
// The zero value is full instrumentation.
type SampleSpec struct {
	Mode SampleMode
	// Rate is the sampling period (SamplePeriodic: every Rate-th
	// reference), the inverse probability (SampleBernoulli: observe with
	// probability 1/Rate), or the mean byte threshold (SampleBytes: one
	// observation per Rate accessed bytes).  Rates <= 1 disable sampling.
	Rate uint64
	// Seed seeds the xorshift64* PRNG of the randomized modes.  Seed 0 is
	// a valid (fixed) seed; two runs with equal specs are byte-identical.
	Seed uint64
}

// Enabled reports whether the spec actually gates observation.
func (s SampleSpec) Enabled() bool { return s.Mode != SampleOff && s.Rate > 1 }

// String renders the canonical spec form, e.g. "bernoulli:rate=64,seed=7";
// a disabled spec renders as "off".  The form round-trips through
// ParseSampleSpec and keys run caches, so the parameter order is fixed.
func (s SampleSpec) String() string {
	if !s.Enabled() {
		return "off"
	}
	out := s.Mode.String() + ":rate=" + strconv.FormatUint(s.Rate, 10)
	if s.Seed != 0 {
		out += ",seed=" + strconv.FormatUint(s.Seed, 10)
	}
	return out
}

// ParseSampleSpec reads "mode:rate=N[,seed=S]" (the faults.Parse grammar
// family).  "" and "off" return the disabled spec.
func ParseSampleSpec(text string) (SampleSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "off" {
		return SampleSpec{}, nil
	}
	modeStr, params, _ := strings.Cut(text, ":")
	mode, err := ParseSampleMode(modeStr)
	if err != nil {
		return SampleSpec{}, err
	}
	if mode == SampleOff {
		return SampleSpec{}, nil
	}
	spec := SampleSpec{Mode: mode}
	if params == "" {
		return SampleSpec{}, fmt.Errorf("memtrace: sample spec %q needs rate=N", text)
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return SampleSpec{}, fmt.Errorf("memtrace: malformed sample parameter %q in %q", kv, text)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return SampleSpec{}, fmt.Errorf("memtrace: sample parameter %s=%q is not a number", key, val)
		}
		switch key {
		case "rate":
			spec.Rate = n
		case "seed":
			spec.Seed = n
		default:
			return SampleSpec{}, fmt.Errorf("memtrace: unknown sample parameter %q in %q (rate, seed)", key, text)
		}
	}
	if spec.Rate <= 1 {
		return SampleSpec{}, fmt.Errorf("memtrace: sample spec %q needs rate > 1", text)
	}
	return spec, nil
}

// xorshift64s is the sampling PRNG: xorshift64* (Marsaglia 2003, Vigna's
// star variant).  It is seeded per SampleSpec.Seed and entirely local to
// one Tracer, so sampled runs are deterministic across runs, platforms and
// -jobs counts — the contract nvlint's determinism pass enforces for this
// package (see internal/lint/determinism_allow.txt).
type xorshift64s struct{ state uint64 }

// seedMix is splitmix64's golden-gamma increment; it turns seed 0 (and any
// small seed) into a well-mixed non-zero xorshift state.
const seedMix = 0x9e3779b97f4a7c15

func newXorshift64s(seed uint64) xorshift64s {
	s := seed + seedMix
	// One splitmix64 round decorrelates consecutive seeds.
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	if s == 0 {
		s = seedMix
	}
	return xorshift64s{state: s}
}

func (x *xorshift64s) next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// sampler is the per-tracer gate state.
type sampler struct {
	spec SampleSpec
	rng  xorshift64s
	// cut is the Bernoulli acceptance bound: observe when next() < cut.
	cut uint64
	// byteTick accumulates accessed bytes toward byteNext (SampleBytes).
	byteTick uint64
	// byteNext is the current randomized threshold.
	byteNext uint64
}

func newSampler(spec SampleSpec) sampler {
	s := sampler{spec: spec, rng: newXorshift64s(spec.Seed)}
	if !spec.Enabled() {
		return s
	}
	switch spec.Mode {
	case SampleBernoulli:
		s.cut = ^uint64(0)/spec.Rate + 1
	case SampleBytes:
		s.byteNext = s.drawThreshold()
	}
	return s
}

// drawThreshold picks the next byte threshold uniformly in [1, 2*Rate), so
// thresholds average Rate bytes without the phase lock a fixed threshold
// would have (the heap-sampler trick, with uniform jitter instead of an
// exponential draw to stay in integer arithmetic).
func (s *sampler) drawThreshold() uint64 {
	return 1 + s.rng.next()%(2*s.spec.Rate-1)
}

// observe decides whether one reference of the given size is observed.
func (s *sampler) observe(tick *uint64, size uint8) bool {
	switch s.spec.Mode {
	case SamplePeriodic:
		*tick++
		return *tick%s.spec.Rate == 0
	case SampleBernoulli:
		return s.rng.next() < s.cut
	case SampleBytes:
		s.byteTick += uint64(size)
		if s.byteTick < s.byteNext {
			return false
		}
		s.byteTick -= s.byteNext
		s.byteNext = s.drawThreshold()
		// An access larger than several thresholds still yields one
		// observation; cap the carry so the next draw stays a draw.
		if s.byteTick >= s.byteNext {
			s.byteTick = s.byteNext - 1
		}
		return true
	}
	return true
}

// Estimator rescales the sampled per-object observations of a Tracer into
// estimates of the true (full-instrumentation) values.  For the uniform
// disciplines each observation stands for Rate references; for byte
// sampling each observation stands for Rate bytes, converted to references
// through the object's mean sampled access size.  Ratios (read/write,
// stack ratio) are left to the caller: uniform scaling cancels in them.
type Estimator struct {
	spec SampleSpec
	// bytesPerRef is the mean sampled access size per object (SampleBytes
	// runs only; nil otherwise).
	bytesPerRef map[ObjectID]float64
}

// Estimator returns the estimator matching the tracer's sampling
// configuration.  Call it after the run; for full runs every factor is 1,
// so estimator-scaled analyses degrade to the exact ones.
func (t *Tracer) Estimator() Estimator {
	e := Estimator{spec: t.sampler.spec}
	if t.sampler.spec.Mode == SampleBytes && t.sampler.spec.Enabled() {
		e.bytesPerRef = make(map[ObjectID]float64, len(t.sampleBytes))
		for id, bytes := range t.sampleBytes {
			if o := t.reg.object(id); o != nil {
				if refs := o.Total().Refs(); refs > 0 {
					e.bytesPerRef[id] = float64(bytes) / float64(refs)
				}
			}
		}
	}
	return e
}

// Spec returns the sampling configuration the estimator corrects for.
func (e Estimator) Spec() SampleSpec { return e.spec }

// Factor returns the multiplier from observed to estimated true reference
// counts for one object.  Objects never observed in a byte-sampled run
// have no size estimate and return 0 (they are "lost", §III-D).
func (e Estimator) Factor(o *Object) float64 {
	if !e.spec.Enabled() {
		return 1
	}
	switch e.spec.Mode {
	case SamplePeriodic, SampleBernoulli:
		return float64(e.spec.Rate)
	case SampleBytes:
		avg := e.bytesPerRef[o.ID]
		if avg == 0 {
			return 0
		}
		return float64(e.spec.Rate) / avg
	}
	return 1
}

// EstStats is an estimated reference breakdown; counts are fractional
// because they are expectations, not observations.
type EstStats struct {
	Reads  float64
	Writes float64
}

// Refs returns estimated total references.
func (s EstStats) Refs() float64 { return s.Reads + s.Writes }

// Total estimates the object's all-iterations counters.
func (e Estimator) Total(o *Object) EstStats {
	f := e.Factor(o)
	t := o.Total()
	return EstStats{Reads: float64(t.Reads) * f, Writes: float64(t.Writes) * f}
}

// Loop estimates the object's main-loop counters (iterations >= 1), the
// denominators of the paper's per-object metrics.
func (e Estimator) Loop(o *Object) EstStats {
	f := e.Factor(o)
	s := o.LoopStats()
	return EstStats{Reads: float64(s.Reads) * f, Writes: float64(s.Writes) * f}
}

// IterSeries estimates the object's per-iteration reference series
// (index 0 is the pre/post phase), the input of the Figure 8-11 variance
// analyses.
func (e Estimator) IterSeries(o *Object) []float64 {
	f := e.Factor(o)
	out := make([]float64, o.Iterations())
	for i := range out {
		out[i] = float64(o.Iter(i).Refs()) * f
	}
	return out
}
