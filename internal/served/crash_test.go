package served

// The seeded crash/disk-fault harness: kill the manager's journal at
// every journaled transition, restart from the state dir, and assert the
// recovered service converges on exactly the reports an uncrashed run
// produces.  Determinism is what makes this provable — the single-flight
// run cache plus the fixed clock mean a re-run of the same spec renders
// byte-identical report bytes, so recovery correctness reduces to byte
// equality.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/obs"
)

// crashSpecs is the harness workload: two different exhibits so the two
// reports are distinguishable, at the given session worker count.
func crashSpecs(jobs int) []experiments.JobSpec {
	return []experiments.JobSpec{
		{Exhibits: []string{"table1"}, Scale: 0.05, Iterations: 2, Jobs: jobs},
		{Exhibits: []string{"table5"}, Scale: 0.05, Iterations: 2, Jobs: jobs},
	}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// reportBytes fetches /jobs/{id}/report through the real HTTP frontend,
// so the comparison covers the full serving path, not just the stored
// result.
func reportBytes(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	code, body := get(t, ts, "/jobs/"+id+"/report")
	if code != 200 {
		t.Fatalf("report %s = %d %q", id, code, body)
	}
	return body
}

// baselineReports runs the workload to completion with no faults and
// returns each job's report bytes by submission index, plus how many
// journal commits the clean run performs — the crash-point count the
// sweep iterates over.
func baselineReports(t *testing.T, jobs int) ([][]byte, uint64) {
	t.Helper()
	plan := faults.NewCrashPlan(0) // unarmed: counts commits, never crashes
	cfg := Config{
		Workers:      2,
		Clock:        fixedClock(),
		StateDir:     t.TempDir(),
		journalCrash: plan.Crashed,
	}
	m, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open baseline: %v", err)
	}
	if rec.Records != 0 || rec.Recovered {
		t.Fatalf("baseline recovery = %+v, want empty", rec)
	}
	var ids []string
	for _, spec := range crashSpecs(jobs) {
		job, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, job.ID())
	}
	reports := make([][]byte, len(ids))
	for i, id := range ids {
		res := await(t, m, id)
		if res.State != experiments.StateDone {
			t.Fatalf("baseline job %s state = %s (%s)", id, res.State, res.Error)
		}
		reports[i] = reportBytes(t, m, id)
	}
	drain(t, m)
	return reports, plan.Calls()
}

// TestCrashRecoveryIdentity is the acceptance sweep: for every journal
// commit a clean run performs, kill the journal at exactly that commit,
// restart from the state dir, and require every acknowledged job to come
// back and finish with report bytes identical to the uncrashed run's.
func TestCrashRecoveryIdentity(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			t.Parallel()
			want, commits := baselineReports(t, jobs)
			if commits < 5 {
				t.Fatalf("baseline made %d journal commits, want at least submits+terminals+drain", commits)
			}
			specs := crashSpecs(jobs)
			for at := uint64(1); at <= commits; at++ {
				dir := t.TempDir()
				plan := faults.NewCrashPlan(at)
				m1, _, err := Open(Config{
					Workers:      2,
					Clock:        fixedClock(),
					StateDir:     dir,
					journalCrash: plan.Crashed,
				})
				if err != nil {
					t.Fatalf("at=%d: Open: %v", at, err)
				}
				// Submit until the dying journal refuses an ack; the acked
				// prefix is exactly what recovery must preserve.
				var acked []string
				for _, spec := range specs {
					job, err := m1.Submit(spec)
					if err != nil {
						break
					}
					acked = append(acked, job.ID())
				}
				for _, id := range acked {
					await(t, m1, id)
				}
				// The crashed journal wrote nothing after the crash point;
				// draining just stops the goroutines, like the process dying.
				drain(t, m1)

				m2, rec, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
				if err != nil {
					t.Fatalf("at=%d: reopen: %v", at, err)
				}
				if len(acked) > 0 && !rec.Recovered {
					t.Errorf("at=%d: recovery = %+v, want Recovered with %d acked jobs", at, rec, len(acked))
				}
				for i, id := range acked {
					res := await(t, m2, id)
					if res.State != experiments.StateDone {
						t.Fatalf("at=%d: recovered job %s state = %s (%s)", at, id, res.State, res.Error)
					}
					got := reportBytes(t, m2, id)
					if string(got) != string(want[i]) {
						t.Errorf("at=%d: job %s report diverged after recovery:\n got %d bytes\nwant %d bytes", at, id, len(got), len(want[i]))
					}
				}
				drain(t, m2)
			}
		})
	}
}

// TestCleanRestartRestoresEverything: a drained manager reopens with all
// terminal jobs, their reports intact, and no crash flag.
func TestCleanRestartRestoresEverything(t *testing.T) {
	dir := t.TempDir()
	m1, _, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	res1 := await(t, m1, job.ID())
	want := reportBytes(t, m1, job.ID())
	drain(t, m1)

	m2, rec, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m2)
	if !rec.CleanShutdown || rec.Recovered {
		t.Errorf("recovery = %+v, want clean shutdown and no crash flag", rec)
	}
	if rec.Restored != 1 || rec.Requeued != 0 {
		t.Errorf("recovery = %+v, want 1 restored, 0 requeued", rec)
	}
	got, err := m2.Get(job.ID())
	if err != nil {
		t.Fatalf("restored job missing: %v", err)
	}
	if got.State() != experiments.StateDone {
		t.Fatalf("restored state = %s", got.State())
	}
	res2 := got.Result()
	if res2.Report != res1.Report {
		t.Error("restored report diverged from the original")
	}
	if string(reportBytes(t, m2, job.ID())) != string(want) {
		t.Error("served report bytes diverged after clean restart")
	}
}

// TestRecoveryRequeuesInSubmissionOrder: jobs acked but never run come
// back queued, in order, and run to completion on the restarted manager
// — even when the configured queue is smaller than the backlog.
func TestRecoveryRequeuesInSubmissionOrder(t *testing.T) {
	dir := t.TempDir()
	// Workers gated shut: every job stays queued while we "crash".
	gate := make(chan struct{})
	reg := obs.NewRegistry()
	m1, _, err := Open(Config{Workers: 1, Queue: 8, Clock: fixedClock(), Metrics: reg, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.beforeRun = func(*Job) { <-gate }
	var ids []string
	for i := 0; i < 4; i++ {
		job, err := m1.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
	}
	// Wait for the worker's started record to commit (4 submits + 1
	// started = 5), then abandon m1 without draining: the journal has a
	// backlog and one job caught mid-run — a crash with work in flight.
	waitFor(t, func() bool {
		n, _ := reg.Snapshot().Counter("served_journal_commits_total")
		return n >= 5
	})
	m2, rec, err := Open(Config{Workers: 1, Queue: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered || rec.Requeued != 4 {
		t.Fatalf("recovery = %+v, want 4 requeued after crash", rec)
	}
	if rec.Rerun == 0 {
		t.Fatalf("recovery = %+v, want the started job counted as rerun", rec)
	}
	var jobs []string
	for _, j := range m2.Jobs() {
		jobs = append(jobs, j.ID())
	}
	for i, id := range ids {
		if jobs[i] != id {
			t.Fatalf("recovered order = %v, want %v", jobs, ids)
		}
	}
	for _, id := range ids {
		if res := await(t, m2, id); res.State != experiments.StateDone {
			t.Fatalf("requeued job %s state = %s (%s)", id, res.State, res.Error)
		}
	}
	// New submissions continue the ID sequence past the recovered ones.
	job, err := m2.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != "job-5" {
		t.Errorf("post-recovery ID = %s, want job-5", job.ID())
	}
	await(t, m2, job.ID())
	drain(t, m2)
	close(gate)
	drainDeadline(t, m1)
}

// drainDeadline drains a manager whose workers may be parked, accepting
// the deadline-forced path.
func drainDeadline(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil && ctx.Err() == nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestRecoveryTruncatesTornTail: garbage after the last committed record
// (a torn tail from a mid-write crash) is dropped on open without losing
// any committed job.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	m1, _, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	await(t, m1, job.ID())
	drain(t, m1)

	wal := filepath.Join(dir, "journal.wal")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xba, 0xad, 0xf0, 0x0d, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m2)
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want torn tail truncated", rec)
	}
	if rec.Restored != 1 {
		t.Fatalf("recovery = %+v, want the committed job intact", rec)
	}
}

// TestJournalSurvivesShortWrites: a disk that periodically short-writes
// (then errors ErrNoSpace) is repaired by the bounded commit retry — no
// submission is refused and a restart sees every job.
func TestJournalSurvivesShortWrites(t *testing.T) {
	dir := t.TempDir()
	spec := faults.MustParse("writer:every=4,mode=short,seed=11")
	reg := obs.NewRegistry()
	m1, _, err := Open(Config{
		Workers:     2,
		Clock:       fixedClock(),
		Metrics:     reg,
		StateDir:    dir,
		journalWrap: func(w io.Writer) io.Writer { return faults.Writer(spec, w) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := m1.Submit(quickSpec())
		if err != nil {
			t.Fatalf("Submit %d: %v (short writes must be repaired, not surfaced)", i, err)
		}
		ids = append(ids, job.ID())
	}
	for _, id := range ids {
		await(t, m1, id)
	}
	drain(t, m1)
	if got, _ := reg.Snapshot().Counter("served_journal_commit_retries_total"); got == 0 {
		t.Fatal("retries = 0: the every=4 short-write fault never tripped")
	}

	m2, rec, err := Open(Config{Workers: 2, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m2)
	if rec.Restored != 3 || !rec.CleanShutdown {
		t.Fatalf("recovery = %+v, want all 3 jobs restored from a clean log", rec)
	}
}

// TestHealthzReportsRecovery pins the /healthz JSON shape after a crash
// restart: recovered=true plus the replay summary.
func TestHealthzReportsRecovery(t *testing.T) {
	dir := t.TempDir()
	plan := faults.NewCrashPlan(3) // die journaling the first terminal record
	m1, _, err := Open(Config{Workers: 1, Clock: fixedClock(), StateDir: dir, journalCrash: plan.Crashed})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m1.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	await(t, m1, job.ID())
	drain(t, m1)

	m2, _, err := Open(Config{Workers: 1, Clock: fixedClock(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m2)
	ts := httptest.NewServer(NewServer(m2))
	defer ts.Close()
	code, body := get(t, ts, "/healthz")
	if code != 200 {
		t.Fatalf("healthz = %d %q", code, body)
	}
	var health struct {
		Status    string    `json:"status"`
		Recovered bool      `json:"recovered"`
		Recovery  *Recovery `json:"recovery"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz did not parse: %v (%q)", err, body)
	}
	if health.Status != "ok" || !health.Recovered || health.Recovery == nil {
		t.Fatalf("healthz = %+v, want ok + recovered + summary", health)
	}
	if health.Recovery.Records == 0 || !health.Recovery.Recovered || health.Recovery.CleanShutdown {
		t.Errorf("recovery summary = %+v, want replayed records from an unclean shutdown", health.Recovery)
	}
}
