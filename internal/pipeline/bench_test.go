package pipeline

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"

	_ "nvscavenger/internal/apps/gtcmini"
)

// BenchmarkPipelineThroughput compares the two delivery disciplines at the
// transaction boundary on the cache-filtered GTC trace: one interface call
// per batch (the pipeline contract) versus one interface call per
// transaction (the legacy contract, via the PerTx adapter).  The trace is
// captured once up front so the benchmark isolates the hand-off cost — the
// price every per-event hop used to pay — from the app and tracer.
func BenchmarkPipelineThroughput(b *testing.B) {
	app, err := apps.New("gtc", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	cacheCfg := cachesim.PaperConfig()
	st := MustBuild(Config{Cache: &cacheCfg, CaptureTx: true})
	if err := apps.Run(app, st.Tracer, 5); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	txs := st.Transactions()
	if len(txs) == 0 {
		b.Fatal("empty trace")
	}

	// The consumer does token per-transaction work (classify + mix the
	// address) so the comparison is delivery discipline, not an empty call.
	var reads, writes, mix uint64
	consume := func(t trace.Transaction) {
		if t.Write {
			writes++
		} else {
			reads++
		}
		mix ^= t.Addr
	}
	deliver := func(b *testing.B, sink trace.TxSink) {
		b.Helper()
		b.ReportMetric(float64(len(txs)), "tx")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(txs); off += trace.DefaultTxBufferSize {
				end := min(off+trace.DefaultTxBufferSize, len(txs))
				if err := sink.FlushTx(txs[off:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("batched", func(b *testing.B) {
		deliver(b, trace.TxSinkFunc(func(batch []trace.Transaction) error {
			for _, t := range batch {
				consume(t)
			}
			return nil
		}))
	})
	b.Run("per-transaction", func(b *testing.B) {
		deliver(b, cachesim.PerTx(cachesim.TxSinkFunc(func(t trace.Transaction) error {
			consume(t)
			return nil
		})))
	})
}

// BenchmarkPipelineInstrumentationOverhead measures what the Counted stage
// wrappers cost on the same workload: metrics off versus metrics on.
func BenchmarkPipelineInstrumentationOverhead(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			app, err := apps.New("gtc", 0.1)
			if err != nil {
				b.Fatal(err)
			}
			cacheCfg := cachesim.PaperConfig()
			cfg.Cache = &cacheCfg
			cfg.CaptureTx = true
			st := MustBuild(cfg)
			if err := apps.Run(app, st.Tracer, 3); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, Config{}) })
	b.Run("on", func(b *testing.B) { run(b, Config{Metrics: obs.NewRegistry()}) })
}

// BenchmarkPipelineSampledTracing measures what sampled tracing buys at the
// pipeline level: the full-instrumentation gtc run against seeded sampled
// runs of each discipline at a common rate.  The app always executes every
// reference (instructions retire regardless), so the delta is the cost the
// observation path — attribution, cache simulation, transaction capture —
// no longer pays for sampled-out references.
func BenchmarkPipelineSampledTracing(b *testing.B) {
	run := func(b *testing.B, spec memtrace.SampleSpec) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			app, err := apps.New("gtc", 0.1)
			if err != nil {
				b.Fatal(err)
			}
			cacheCfg := cachesim.PaperConfig()
			st := MustBuild(Config{Sample: spec, Cache: &cacheCfg, CaptureTx: true})
			if err := apps.Run(app, st.Tracer, 3); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, memtrace.SampleSpec{}) })
	b.Run("period-64", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: 64})
	})
	b.Run("bernoulli-64", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SampleBernoulli, Rate: 64, Seed: 7})
	})
	b.Run("bytes-4096", func(b *testing.B) {
		run(b, memtrace.SampleSpec{Mode: memtrace.SampleBytes, Rate: 4096, Seed: 7})
	})
}
