package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Op strings wrong: %v %v", Read, Write)
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Fatalf("unknown op string = %q", got)
	}
}

func TestSegmentString(t *testing.T) {
	cases := map[Segment]string{
		SegGlobal: "global", SegHeap: "heap", SegStack: "stack", SegUnknown: "unknown",
	}
	for seg, want := range cases {
		if got := seg.String(); got != want {
			t.Errorf("Segment(%d).String() = %q, want %q", seg, got, want)
		}
	}
}

func TestAccessHelpers(t *testing.T) {
	a := Access{Addr: 100, Size: 8, Op: Write}
	if !a.IsWrite() {
		t.Error("IsWrite should be true for Write op")
	}
	if a.End() != 108 {
		t.Errorf("End = %d, want 108", a.End())
	}
	r := Access{Addr: 0, Size: 1, Op: Read}
	if r.IsWrite() {
		t.Error("IsWrite should be false for Read op")
	}
}

func TestBufferFlushesInBatches(t *testing.T) {
	var got []Access
	sink := SinkFunc(func(batch []Access) error {
		got = append(got, batch...)
		return nil
	})
	b := NewBuffer(sink, 4)
	for i := 0; i < 10; i++ {
		b.Add(Access{Addr: uint64(i), Size: 8, Op: Read})
	}
	if len(got) != 8 {
		t.Fatalf("before close: delivered %d accesses, want 8 (two full batches)", len(got))
	}
	if b.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", b.Flushes)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("after close: delivered %d accesses, want 10", len(got))
	}
	for i, a := range got {
		if a.Addr != uint64(i) {
			t.Fatalf("access %d has addr %d; order not preserved", i, a.Addr)
		}
	}
}

func TestBufferDefaultSize(t *testing.T) {
	b := NewBuffer(&Stats{}, 0)
	if len(b.buf) != DefaultBufferSize {
		t.Fatalf("default buffer size = %d, want %d", len(b.buf), DefaultBufferSize)
	}
}

func TestBufferStickyError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	sink := SinkFunc(func([]Access) error {
		calls++
		return boom
	})
	b := NewBuffer(sink, 1)
	b.Add(Access{})
	b.Add(Access{})
	b.Add(Access{})
	if b.Err() != boom {
		t.Fatal("expected sticky error")
	}
	if err := b.Close(); err != boom {
		t.Fatalf("Close error = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times, want 1 (a failed sink must not be retried)", calls)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
}

func TestTxBufferFlushesInBatches(t *testing.T) {
	var got []Transaction
	sink := TxSinkFunc(func(batch []Transaction) error {
		got = append(got, batch...)
		return nil
	})
	b := NewTxBuffer(sink, 4)
	for i := 0; i < 10; i++ {
		b.Add(Transaction{Addr: uint64(i), Write: i%2 == 0, Cycle: uint64(i)})
	}
	if len(got) != 8 {
		t.Fatalf("before close: delivered %d transactions, want 8 (two full batches)", len(got))
	}
	if b.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", b.Flushes)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("after Flush: delivered %d transactions, want 10", len(got))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tx := range got {
		if tx.Addr != uint64(i) || tx.Cycle != uint64(i) {
			t.Fatalf("transaction %d = %+v; order not preserved", i, tx)
		}
	}
}

func TestTxBufferDefaultSize(t *testing.T) {
	b := NewTxBuffer(TxSinkFunc(func([]Transaction) error { return nil }), 0)
	if len(b.buf) != DefaultTxBufferSize {
		t.Fatalf("default tx buffer size = %d, want %d", len(b.buf), DefaultTxBufferSize)
	}
}

func TestTxBufferStickyError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	sink := TxSinkFunc(func([]Transaction) error {
		calls++
		return boom
	})
	b := NewTxBuffer(sink, 1)
	b.Add(Transaction{})
	b.Add(Transaction{})
	b.Add(Transaction{})
	if b.Err() != boom {
		t.Fatal("expected sticky error")
	}
	if err := b.Close(); err != boom {
		t.Fatalf("Close error = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times, want 1 (a failed sink must not be retried)", calls)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
}

func TestBufferCloseEmpty(t *testing.T) {
	calls := 0
	b := NewBuffer(SinkFunc(func([]Access) error { calls++; return nil }), 8)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("empty buffer should not flush")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Observe(Access{Size: 8, Op: Read})
	s.Observe(Access{Size: 8, Op: Read})
	s.Observe(Access{Size: 4, Op: Write})
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", s.Reads, s.Writes)
	}
	if s.BytesRead != 16 || s.BytesWrite != 4 {
		t.Fatalf("bytes = %d/%d, want 16/4", s.BytesRead, s.BytesWrite)
	}
	if s.Total() != 3 {
		t.Fatalf("Total = %d, want 3", s.Total())
	}
	if got := s.ReadWriteRatio(); got != 2 {
		t.Fatalf("ratio = %v, want 2", got)
	}
}

func TestStatsReadOnlyRatio(t *testing.T) {
	var s Stats
	if s.ReadWriteRatio() != 0 {
		t.Fatal("empty stats should have ratio 0")
	}
	s.Observe(Access{Size: 8, Op: Read})
	s.Observe(Access{Size: 8, Op: Read})
	if got := s.ReadWriteRatio(); got != 2 {
		t.Fatalf("read-only ratio should equal read count, got %v", got)
	}
}

func TestStatsAsSink(t *testing.T) {
	var s Stats
	b := NewBuffer(&s, 3)
	for i := 0; i < 7; i++ {
		op := Read
		if i%2 == 1 {
			op = Write
		}
		b.Add(Access{Size: 1, Op: op})
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Reads != 4 || s.Writes != 3 {
		t.Fatalf("stats %d/%d, want 4/3", s.Reads, s.Writes)
	}
}

func TestAccessRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	in := []Access{
		{Addr: 0, Size: 1, Op: Read},
		{Addr: 0xdeadbeef, Size: 8, Op: Write},
		{Addr: 1<<48 - 1, Size: 64, Op: Read},
	}
	for _, a := range in {
		if err := w.WriteAccess(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(in))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindAccess {
		t.Fatalf("Kind = %d, want KindAccess", r.Kind())
	}
	for i, want := range in {
		got, err := r.ReadAccess()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadAccess(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTransactionWriter(&buf)
	in := []Transaction{
		{Addr: 0x1000, Write: false, Cycle: 10},
		{Addr: 0x2040, Write: true, Cycle: 99999},
	}
	for _, tr := range in {
		if err := w.WriteTransaction(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindTransaction {
		t.Fatalf("Kind = %d, want KindTransaction", r.Kind())
	}
	for i, want := range in {
		got, err := r.ReadTransaction()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadTransaction(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	if err := w.WriteTransaction(Transaction{}); err == nil {
		t.Fatal("WriteTransaction on access writer should fail")
	}
	if err := w.WriteAccess(Access{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadTransaction(); err == nil {
		t.Fatal("ReadTransaction on access stream should fail")
	}
}

func TestEmptyTraceHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAccess(); err != io.EOF {
		t.Fatalf("want EOF on empty trace, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("BOGUS123"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad magic: err = %v, want ErrBadTrace", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("NV"))); err == nil {
		t.Fatal("short header should error")
	}
	bad := []byte("NVSC\x63\x01\x00\x00") // wrong version
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad version: err = %v, want ErrBadTrace", err)
	}
	badKind := []byte("NVSC\x01\x07\x00\x00")
	if _, err := NewReader(bytes.NewReader(badKind)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad kind: err = %v, want ErrBadTrace", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	if err := w.WriteAccess(Access{Addr: 1, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAccess(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated record: err = %v, want ErrBadTrace", err)
	}
}

func TestBadOpRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewAccessWriter(&buf)
	if err := w.WriteAccess(Access{Addr: 1, Size: 8, Op: Read}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 7 // corrupt the op byte
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAccess(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad op: err = %v, want ErrBadTrace", err)
	}
}

// Property: encode→decode is the identity on access streams.
func TestQuickAccessRoundTrip(t *testing.T) {
	f := func(addrs []uint64, sizes []uint8, writes []bool) bool {
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(writes) < n {
			n = len(writes)
		}
		in := make([]Access, n)
		for i := 0; i < n; i++ {
			op := Read
			if writes[i] {
				op = Write
			}
			in[i] = Access{Addr: addrs[i], Size: sizes[i], Op: op}
		}
		var buf bytes.Buffer
		w := NewAccessWriter(&buf)
		for _, a := range in {
			if err := w.WriteAccess(a); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range in {
			got, err := r.ReadAccess()
			if err != nil || got != want {
				return false
			}
		}
		_, err = r.ReadAccess()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Stats totals equal the sum of per-op counts regardless of stream.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(ops []bool, sizes []uint8) bool {
		n := len(ops)
		if len(sizes) < n {
			n = len(sizes)
		}
		var s Stats
		var reads, writes uint64
		for i := 0; i < n; i++ {
			op := Read
			if ops[i] {
				op = Write
				writes++
			} else {
				reads++
			}
			s.Observe(Access{Size: sizes[i], Op: op})
		}
		return s.Reads == reads && s.Writes == writes && s.Total() == reads+writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
