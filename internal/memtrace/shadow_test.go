package memtrace

import (
	"testing"

	"nvscavenger/internal/trace"
)

func TestStackModeString(t *testing.T) {
	if FastStack.String() != "fast" || SlowStack.String() != "slow" {
		t.Fatal("StackMode strings wrong")
	}
}

func TestSlowModePerRoutineAttribution(t *testing.T) {
	tr := newSlow(t)
	tr.BeginIteration()

	fa := tr.Enter("alpha")
	a := fa.LocalF64(4)
	a.Store(0, 1)
	_ = a.Load(0)

	fb := tr.Enter("beta")
	b := fb.LocalF64(4)
	b.Store(0, 2)
	// beta also reads alpha's frame: attributed to alpha, the routine that
	// allocated the data (paper: "attributed to the underneath frame").
	_ = a.Load(0)
	tr.Leave()
	tr.Leave()

	objs := tr.StackObjects()
	if len(objs) != 2 {
		t.Fatalf("want 2 routine objects, got %d", len(objs))
	}
	var alpha, beta *Object
	for _, o := range objs {
		switch o.Name {
		case "alpha":
			alpha = o
		case "beta":
			beta = o
		}
	}
	if alpha == nil || beta == nil {
		t.Fatal("missing routine objects")
	}
	as := alpha.Iter(1)
	if as.Reads != 2 || as.Writes != 1 {
		t.Fatalf("alpha stats = %d/%d, want 2/1", as.Reads, as.Writes)
	}
	bs := beta.Iter(1)
	if bs.Reads != 0 || bs.Writes != 1 {
		t.Fatalf("beta stats = %d/%d, want 0/1", bs.Reads, bs.Writes)
	}
}

func TestSlowModeRoutineObjectReused(t *testing.T) {
	tr := newSlow(t)
	for i := 0; i < 3; i++ {
		f := tr.Enter("kern")
		l := f.LocalF64(2)
		l.Store(0, float64(i))
		tr.Leave()
	}
	objs := tr.StackObjects()
	if len(objs) != 1 {
		t.Fatalf("repeated calls should share one routine object, got %d", len(objs))
	}
	if objs[0].Total().Writes != 3 {
		t.Fatalf("writes = %d, want 3", objs[0].Total().Writes)
	}
}

func TestRoutineFrameSizeIsMaxObserved(t *testing.T) {
	tr := newSlow(t)
	f := tr.Enter("var")
	f.LocalF64(10) // 80 bytes
	tr.Leave()
	f = tr.Enter("var")
	f.LocalF64(100) // 800 bytes
	tr.Leave()
	f = tr.Enter("var")
	f.LocalF64(5)
	tr.Leave()
	o := tr.StackObjects()[0]
	if o.Size != 800 {
		t.Fatalf("routine frame size = %d, want max observed 800", o.Size)
	}
}

func TestNestedFramesRestoreSP(t *testing.T) {
	tr := newSlow(t)
	sp0 := tr.sp
	fa := tr.Enter("a")
	fa.LocalF64(16)
	spA := tr.sp
	fb := tr.Enter("b")
	fb.LocalF64(16)
	if tr.sp >= spA {
		t.Fatal("stack should grow downward")
	}
	tr.Leave()
	if tr.sp != spA {
		t.Fatalf("sp after inner leave = %#x, want %#x", tr.sp, spA)
	}
	tr.Leave()
	if tr.sp != sp0 {
		t.Fatalf("sp after outer leave = %#x, want %#x", tr.sp, sp0)
	}
	if tr.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", tr.Depth())
	}
}

func TestLeaveWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newFast(t).Leave()
}

func TestLocalOnStaleFramePanics(t *testing.T) {
	tr := newSlow(t)
	fa := tr.Enter("a")
	tr.Enter("b")
	defer func() {
		if recover() == nil {
			t.Fatal("allocating locals on a non-top frame must panic")
		}
	}()
	fa.LocalF64(1)
}

func TestStackOverflowPanics(t *testing.T) {
	tr := New(Config{StackReserve: 1024})
	f := tr.Enter("deep")
	defer func() {
		if recover() == nil {
			t.Fatal("expected simulated stack overflow")
		}
	}()
	f.LocalF64(1000) // 8000 bytes > 1024 reserve
}

func TestFastModeStackClassification(t *testing.T) {
	tr := newFast(t)
	f := tr.Enter("r")
	l := f.LocalF64(64) // 512 bytes, deeper than the red zone
	addr := l.Base()
	if !tr.isStackAddr(addr) {
		t.Fatal("local address should classify as stack while frame is live")
	}
	tr.Leave()
	// After leaving, sp is restored above the old local: the address lies
	// below sp and beyond the red zone, so it is no longer stack data.
	if tr.isStackAddr(addr) {
		t.Fatal("address below current sp should not classify as stack")
	}
	// An address just below sp stays classified as stack (red zone).
	if !tr.isStackAddr(tr.sp - 8) {
		t.Fatal("red-zone address should classify as stack")
	}
}

func TestSlowModeArgBuildAttributedToTopFrame(t *testing.T) {
	tr := newSlow(t)
	tr.BeginIteration()
	f := tr.Enter("caller")
	_ = f
	// An access below the top frame's low mark (simulating outgoing
	// argument construction) goes to the top frame's routine.
	tr.access(tr.sp-32, 8, trace.Write)
	tr.Leave()
	o := tr.StackObjects()[0]
	if o.Total().Writes != 1 {
		t.Fatalf("arg-build write not attributed to top frame: %+v", o.Total())
	}
}

func TestSlowModeWalkThroughDeepNesting(t *testing.T) {
	// Three frames deep, the innermost routine reads data allocated two
	// frames up; the walk from the top must skip the two inner frames and
	// attribute the access to the allocating routine.
	tr := newSlow(t)
	tr.BeginIteration()
	fa := tr.Enter("grandparent")
	data := fa.LocalF64(8)
	fb := tr.Enter("parent")
	fb.LocalF64(8)
	fc := tr.Enter("child")
	fc.LocalF64(8)
	_ = data.Load(3)
	tr.Leave()
	tr.Leave()
	tr.Leave()
	for _, o := range tr.StackObjects() {
		want := uint64(0)
		if o.Name == "grandparent" {
			want = 1
		}
		if got := o.Total().Reads; got != want {
			t.Fatalf("%s frame reads = %d, want %d", o.Name, got, want)
		}
	}
}

func TestLocalI64(t *testing.T) {
	tr := newSlow(t)
	tr.BeginIteration()
	f := tr.Enter("ints")
	xs := f.LocalI64(3)
	xs.Store(0, 7)
	xs.Add(0, 1)
	if got := xs.Load(0); got != 8 {
		t.Fatalf("I64 local = %d, want 8", got)
	}
	if xs.Len() != 3 {
		t.Fatalf("len = %d", xs.Len())
	}
	if xs.Raw()[0] != 8 {
		t.Fatal("raw view inconsistent")
	}
	tr.Leave()
}
