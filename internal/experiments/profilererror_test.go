package experiments

import (
	"strings"
	"testing"

	"nvscavenger/internal/memtrace"
)

var testProfilerSpecs = []memtrace.SampleSpec{
	{Mode: memtrace.SampleBernoulli, Rate: 16, Seed: 1},
	{Mode: memtrace.SampleBernoulli, Rate: 64, Seed: 1},
	{Mode: memtrace.SamplePeriodic, Rate: 16},
	{Mode: memtrace.SampleBytes, Rate: 512, Seed: 1},
}

func TestProfilerErrorStudy(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3))
	rows, err := s.ProfilerErrorStudy("gtc", testProfilerSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(testProfilerSpecs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(testProfilerSpecs))
	}
	for i, r := range rows {
		if r.Spec != testProfilerSpecs[i] {
			t.Errorf("row %d: spec %v out of input order (want %v)", i, r.Spec, testProfilerSpecs[i])
		}
		if r.TrueRefs == 0 || r.TrueRefs != rows[0].TrueRefs {
			t.Errorf("%v: TrueRefs %d should be the shared perfect-run count %d",
				r.Spec, r.TrueRefs, rows[0].TrueRefs)
		}
		if r.ObservedRefs == 0 || r.ObservedRefs >= r.TrueRefs {
			t.Errorf("%v: observed %d refs of %d true — sampling did not reduce the stream",
				r.Spec, r.ObservedRefs, r.TrueRefs)
		}
		if r.TotalObjects == 0 {
			t.Errorf("%v: no active objects in the perfect run", r.Spec)
		}
		if r.LostObjects < 0 || r.LostObjects > r.TotalObjects {
			t.Errorf("%v: lost %d of %d objects", r.Spec, r.LostObjects, r.TotalObjects)
		}
		if r.MaxRefsErr < r.MeanRefsErr {
			t.Errorf("%v: max error %.3f below mean %.3f", r.Spec, r.MaxRefsErr, r.MeanRefsErr)
		}
	}
	// Bernoulli at rate 16 collects thousands of observations per object at
	// this scale, so the estimator's relative error stays small.  (The
	// periodic gate at the same rate does NOT get this bound: it phase-locks
	// with gtc's strided loops — the artifact this study makes visible.)
	if rows[0].MeanRefsErr > 0.25 {
		t.Errorf("%v: mean refs error %.1f%% too large for rate 16",
			rows[0].Spec, rows[0].MeanRefsErr*100)
	}
	if rows[0].StackRatioErr > 0.5 {
		t.Errorf("%v: stack-ratio error %.1f%% too large for rate 16",
			rows[0].Spec, rows[0].StackRatioErr*100)
	}
}

// TestProfilerErrorStudyDeterministicAcrossJobs: the exhibit's bytes must
// not depend on the worker-pool width — the seeded PRNG is per-tracer, runs
// are keyed per spec, and results are collected in input order.  This is
// the -jobs 1 vs -jobs N byte-identity contract the report generator
// promises, run race-enabled via `make race-sampling`.
func TestProfilerErrorStudyDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		s := NewSession(WithScale(0.05), WithIterations(3), WithJobs(jobs))
		rows, err := s.ProfilerErrorStudy("gtc", testProfilerSpecs)
		if err != nil {
			t.Fatal(err)
		}
		return FormatProfilerErrorStudy("gtc", rows)
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("profiler error study differs between -jobs 1 and -jobs 8:\n--- jobs 1\n%s\n--- jobs 8\n%s",
			serial, parallel)
	}
}

// TestRelErrZeroTruthFallback: a truth of 0 must not silently score 0 —
// the estimate's own magnitude is the error (the StackRatioError bug this
// PR fixes, see SamplingStudy).
func TestRelErrZeroTruthFallback(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{0, 0, 0},
		{0.5, 0, 0.5},  // the old code reported 0 here
		{-0.5, 0, 0.5}, // absolute, not signed
		{3, 2, 0.5},
		{1, 2, 0.5},
		{2, 2, 0},
	}
	for _, c := range cases {
		if got := relErr(c.est, c.truth); got != c.want {
			t.Errorf("relErr(%g, %g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}

// tableAligned checks that every row of a fixed-width table is exactly as
// wide as its header, the property the FormatSamplingStudy "objects lost"
// cell violated (19 rendered chars under an 18-wide header, shearing every
// column after it one place to the right).
func tableAligned(t *testing.T, table string, header string, nRows int) {
	t.Helper()
	lines := strings.Split(table, "\n")
	h := -1
	for i, line := range lines {
		if strings.HasPrefix(line, header) {
			h = i
			break
		}
	}
	if h < 0 {
		t.Fatalf("header %q not found in:\n%s", header, table)
	}
	want := len(lines[h])
	for i := h + 1; i <= h+nRows; i++ {
		if len(lines[i]) != want {
			t.Errorf("row %q is %d chars wide, header is %d:\n%s",
				lines[i], len(lines[i]), want, table)
		}
	}
}

func TestFormatSamplingStudyAlignment(t *testing.T) {
	rows := []SamplingRow{
		{Period: 1, ObservedRefs: 123456789, LostObjects: 0, TotalObjects: 25},
		{Period: 256, ObservedRefs: 482253, LostObjects: 7, TotalObjects: 25, StackRatioError: 0.123, PlacementDiffs: 9},
	}
	tableAligned(t, FormatSamplingStudy("nek5000", rows), "  period", len(rows))
}

func TestFormatProfilerErrorStudyAlignment(t *testing.T) {
	rows := []ProfilerErrorRow{
		{Spec: memtrace.SampleSpec{Mode: memtrace.SampleBernoulli, Rate: 256, Seed: 42},
			ObservedRefs: 482253, TrueRefs: 123456789, TotalObjects: 25, LostObjects: 7,
			MeanRefsErr: 0.123, MaxRefsErr: 1, MeanWritesErr: 0.2, StackRatioErr: 0.01},
		{Spec: memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: 64},
			ObservedRefs: 1929012, TrueRefs: 123456789, TotalObjects: 25},
	}
	tableAligned(t, FormatProfilerErrorStudy("nek5000", rows), "sample spec", len(rows))
}
