// Package wear models write endurance inside an NVRAM region at cache-line
// granularity, quantifying the §II concern that limited write endurance
// (PCRAM: 1e8-1e9.7 cycles against DRAM's 1e16) must be managed before data
// can live in NVRAM.
//
// Two line-placement schemes are modelled:
//
//   - Static: a line's physical location never changes, so a hot line
//     concentrates all of its writes on the same cells and dies first.
//   - Start-Gap (Qureshi et al., MICRO 2009): one spare line plus a gap
//     pointer that rotates through the region, remapping every logical
//     line across all physical lines over time with near-zero metadata.
//
// The Tracker consumes write addresses (e.g. the writeback side of the
// cache-filtered transaction stream) and reports per-line write statistics
// and lifetime estimates under a device profile.
package wear

import (
	"fmt"

	"nvscavenger/internal/dramsim"
)

// Scheme selects the wear-leveling policy.
type Scheme uint8

const (
	// Static keeps the logical-to-physical line mapping fixed.
	Static Scheme = iota
	// StartGap rotates the mapping by one line every GapMovePeriod writes.
	StartGap
)

// String names the scheme.
func (s Scheme) String() string {
	if s == StartGap {
		return "start-gap"
	}
	return "static"
}

// Config describes the tracked region.
type Config struct {
	// BaseAddr and Lines delimit the region (line size 64 B).
	BaseAddr uint64
	Lines    int
	// Scheme selects wear leveling.
	Scheme Scheme
	// GapMovePeriod is the number of region writes between gap moves
	// (Start-Gap's psi parameter; default 100, as in the original paper).
	GapMovePeriod int
}

func (c Config) withDefaults() Config {
	if c.GapMovePeriod == 0 {
		c.GapMovePeriod = 100
	}
	return c
}

func (c Config) validate() error {
	if c.Lines <= 0 {
		return fmt.Errorf("wear: non-positive line count")
	}
	if c.GapMovePeriod < 1 {
		return fmt.Errorf("wear: gap move period below 1")
	}
	return nil
}

// Tracker accumulates per-physical-line write counts for one region.
type Tracker struct {
	cfg    Config
	writes []uint64 // per physical line
	total  uint64
	// Start-Gap state, following Qureshi et al.: with N logical lines and
	// N+1 physical lines, logical line l maps to p = (l + start) mod N,
	// shifted one further when p >= gap.  The gap walks from N down to 0;
	// on reaching 0 it resets to N and start advances, completing one full
	// rotation of the region.
	gap        int
	start      int
	sinceMove  int
	gapMoves   uint64
	outOfRange uint64
}

// NewTracker builds a Tracker.
func NewTracker(cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tracker{cfg: cfg}
	if cfg.Scheme == StartGap {
		// One spare line; the gap starts past the last line.
		t.writes = make([]uint64, cfg.Lines+1)
		t.gap = cfg.Lines
	} else {
		t.writes = make([]uint64, cfg.Lines)
	}
	return t, nil
}

// physical maps a logical line to its physical line under the scheme.
func (t *Tracker) physical(logical int) int {
	if t.cfg.Scheme != StartGap {
		return logical
	}
	p := (logical + t.start) % t.cfg.Lines
	// Lines at or past the gap are shifted one further (the gap is empty).
	if p >= t.gap {
		p++
	}
	return p
}

// Write records one line write at addr.  Addresses outside the region are
// counted and ignored.
func (t *Tracker) Write(addr uint64) {
	if addr < t.cfg.BaseAddr {
		t.outOfRange++
		return
	}
	logical := int((addr - t.cfg.BaseAddr) / 64)
	if logical >= t.cfg.Lines {
		t.outOfRange++
		return
	}
	t.writes[t.physical(logical)]++
	t.total++

	if t.cfg.Scheme == StartGap {
		t.sinceMove++
		if t.sinceMove >= t.cfg.GapMovePeriod {
			t.sinceMove = 0
			t.moveGap()
		}
	}
}

// moveGap advances the wear-leveling state by one step: the line just
// before the gap is copied into the gap (one write to the gap cell) and
// the gap takes its place; when the gap reaches location 0 it resets to
// the spare position and start advances — the region has rotated by one.
func (t *Tracker) moveGap() {
	if t.gap == 0 {
		t.gap = t.cfg.Lines
		t.start = (t.start + 1) % t.cfg.Lines
		return
	}
	// Copying the displaced line is a write to the current gap cell.
	t.writes[t.gap]++
	t.gapMoves++
	t.gap--
}

// Report summarizes wear for the region.
type Report struct {
	Scheme     Scheme
	Lines      int
	TotalLine  uint64 // total line writes recorded (incl. gap copies)
	MaxLine    uint64 // writes on the most-worn physical line
	MeanLine   float64
	GapMoves   uint64
	OutOfRange uint64
	// Imbalance is MaxLine/MeanLine: 1.0 is perfect leveling.
	Imbalance float64
}

// Report computes the current summary.
func (t *Tracker) Report() Report {
	r := Report{
		Scheme:     t.cfg.Scheme,
		Lines:      t.cfg.Lines,
		GapMoves:   t.gapMoves,
		OutOfRange: t.outOfRange,
	}
	var sum uint64
	for _, w := range t.writes {
		sum += w
		if w > r.MaxLine {
			r.MaxLine = w
		}
	}
	r.TotalLine = sum
	r.MeanLine = float64(sum) / float64(len(t.writes))
	if r.MeanLine > 0 {
		r.Imbalance = float64(r.MaxLine) / r.MeanLine
	}
	return r
}

// LifetimeWrites estimates how many more region writes (at the observed
// distribution) the region survives before its most-worn line exhausts the
// device's per-cell endurance.  Returns the endurance itself when nothing
// has been written.
func (t *Tracker) LifetimeWrites(prof dramsim.DeviceProfile) float64 {
	r := t.Report()
	if r.MaxLine == 0 || r.TotalLine == 0 {
		return prof.WriteEndurance
	}
	// The hottest line receives MaxLine/TotalLine of region writes; it
	// dies after WriteEndurance writes.
	hotShare := float64(r.MaxLine) / float64(r.TotalLine)
	return prof.WriteEndurance / hotShare
}
