package gtcmini

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func runGTC(t *testing.T, scale float64, iters int, mode memtrace.StackMode) (*App, *memtrace.Tracer) {
	t.Helper()
	app := New(scale)
	tr := memtrace.New(memtrace.Config{StackMode: mode})
	if err := apps.Run(app, tr, iters); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRegistered(t *testing.T) {
	a, err := apps.New("gtc", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "gtc" {
		t.Fatalf("name = %q", a.Name())
	}
}

// TestTableVCalibration checks GTC's stack numbers: ~44.3% stack reference
// share, read/write ratio ~3.48.
func TestTableVCalibration(t *testing.T) {
	_, tr := runGTC(t, 0.5, 10, memtrace.FastStack)
	iters := tr.MainLoopIterations()
	st := tr.SegmentTotals(trace.SegStack, 1, iters)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, iters)
	hp := tr.SegmentTotals(trace.SegHeap, 1, iters)

	total := st.Total() + gl.Total() + hp.Total()
	share := float64(st.Total()) / float64(total)
	if share < 0.38 || share > 0.50 {
		t.Errorf("stack reference share = %.3f, want ~0.443", share)
	}
	if r := st.ReadWriteRatio(); r < 2.9 || r > 4.1 {
		t.Errorf("stack r/w ratio = %.2f, want ~3.48", r)
	}
}

// TestHeapDominatesFootprint: GTC is allocatable-heavy; the particle arrays
// must dominate the footprint and have low read/write ratios.
func TestHeapDominatesFootprint(t *testing.T) {
	_, tr := runGTC(t, 0.5, 5, memtrace.FastStack)
	var heapBytes, globalBytes uint64
	for _, o := range tr.Objects() {
		switch o.Segment {
		case trace.SegHeap:
			if !o.Dead {
				heapBytes += o.Size
			}
		case trace.SegGlobal:
			globalBytes += o.Size
		}
	}
	if heapBytes <= globalBytes*4 {
		t.Errorf("heap %d bytes vs global %d: particle arrays must dominate", heapBytes, globalBytes)
	}
}

func TestLowObjectRatios(t *testing.T) {
	_, tr := runGTC(t, 0.3, 10, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegHeap || o.Dead || o.LoopStats().Refs() == 0 {
			continue
		}
		if r := o.LoopReadWriteRatio(); r > 10 {
			t.Errorf("%s loop r/w ratio = %.1f: GTC heap objects must stay write-heavy", o.Name, r)
		}
	}
}

func TestRadialAuxReadOnly(t *testing.T) {
	_, tr := runGTC(t, 0.2, 5, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Name == "rapid_r" {
			if !o.LoopReadOnly() {
				t.Fatal("rapid_r must be read-only during the loop")
			}
			return
		}
	}
	t.Fatal("rapid_r missing")
}

// TestEvenTouch: every long-lived object is touched in every iteration
// (the reason the paper omits GTC from Figure 7).
func TestEvenTouch(t *testing.T) {
	_, tr := runGTC(t, 0.2, 8, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Segment == trace.SegStack || o.LoopStats().Refs() == 0 {
			continue
		}
		if o.Name == "diagnosis" {
			continue // post-processing only
		}
		if o.TouchedIterations() != 8 {
			t.Errorf("%s touched in %d of 8 iterations: GTC objects are evenly touched", o.Name, o.TouchedIterations())
		}
	}
}

// TestConstantReferenceRates: per-iteration reference counts for the main
// arrays vary by < 1% across iterations (Figure 11).
func TestConstantReferenceRates(t *testing.T) {
	_, tr := runGTC(t, 0.2, 6, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Name != "zion" && o.Name != "densityi" {
			continue
		}
		base := o.Iter(1).Refs()
		for it := 2; it <= 6; it++ {
			refs := o.Iter(it).Refs()
			if refs != base {
				t.Errorf("%s iteration %d refs = %d, want %d (constant rate)", o.Name, it, refs, base)
			}
		}
	}
}

func TestShortTermScratchFreed(t *testing.T) {
	_, tr := runGTC(t, 0.2, 4, memtrace.FastStack)
	found := false
	for _, o := range tr.HeapObjects() {
		if o.Name == "shift_stage" {
			found = true
			if !o.Dead {
				t.Error("shift_stage must be freed each iteration")
			}
			if o.TouchedIterations() != 4 {
				t.Errorf("shift_stage touched %d iterations, want 4", o.TouchedIterations())
			}
		}
	}
	if !found {
		t.Fatal("shift_stage missing")
	}
}

func TestParticlesStayInRange(t *testing.T) {
	app, _ := runGTC(t, 0.2, 10, memtrace.FastStack)
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a1, _ := runGTC(t, 0.1, 3, memtrace.FastStack)
	a2, _ := runGTC(t, 0.1, 3, memtrace.FastStack)
	if a1.checksum != a2.checksum {
		t.Fatal("runs must be deterministic")
	}
}
