// Command nvbench converts `go test -bench` text output into the
// repository's benchmark-snapshot JSON, so performance baselines can be
// committed and diffed instead of pasted into commit messages.
//
// Usage:
//
//	go test -bench 'BenchmarkPipeline' ./internal/pipeline | nvbench -out BENCH_PIPELINE.json
//	nvbench -in bench.txt              # parse a saved run, JSON to stdout
//	go test -bench ... | nvbench -compare BENCH_PIPELINE.json
//
// When -out is set the raw benchmark text is echoed to stdout, so the
// tool is transparent in a pipeline.  The snapshot records the run
// environment (goos/goarch/cpu/packages) and, per benchmark, the
// iteration count and every reported metric (ns/op, B/op, custom
// b.ReportMetric units) keyed by unit.  `make bench-snapshot` wires the
// pipeline benchmarks through it.
//
// -compare diffs a fresh run against a committed baseline snapshot: one
// row per benchmark and metric with the relative delta, plus benchmarks
// present on only one side.  It is report-only by default (timing noise
// on a shared machine is not a failure); -threshold N makes it exit
// non-zero when ns/op regresses by more than N percent or allocs/op
// grows at all.  `make bench-compare` wires the pipeline benchmarks
// through it.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"nvscavenger/internal/cli"
)

// snapshotSchemaVersion versions the BENCH_PIPELINE.json shape; bump it
// on any incompatible field change so downstream diff tooling can reject
// snapshots it does not understand.
const snapshotSchemaVersion = 1

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Goos          string `json:"goos,omitempty"`
	Goarch        string `json:"goarch,omitempty"`
	CPU           string `json:"cpu,omitempty"`
	// Packages lists every `pkg:` header seen, in input order.
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line.  Metrics maps unit to value — "ns/op"
// always, plus "B/op"/"allocs/op" under -benchmem and any custom
// b.ReportMetric units; encoding/json renders the keys sorted, so the
// same run serializes to the same bytes.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() { cli.Main("nvbench", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvbench")
	in := fs.String("in", "", "read benchmark text from this file instead of stdin")
	outPath := fs.String("out", "", "write the JSON snapshot to this file instead of stdout")
	comparePath := fs.String("compare", "", "diff the run against this committed baseline snapshot instead of emitting JSON")
	threshold := fs.Float64("threshold", 0, "with -compare: fail when ns/op regresses more than this percent or allocs/op grows at all (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath != "" && *comparePath != "" {
		return errors.New("-out and -compare are mutually exclusive")
	}

	var data []byte
	var err error
	if *in != "" {
		data, err = os.ReadFile(*in)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	snap, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return errors.New("no benchmark result lines in input")
	}
	if *comparePath != "" {
		base, err := readSnapshot(*comparePath)
		if err != nil {
			return err
		}
		return Compare(out, base, snap, *threshold)
	}
	if *outPath != "" {
		// Stay transparent in a pipeline: the bench text the user asked
		// for still reaches stdout, the snapshot goes to the file.
		fmt.Fprint(out, string(data))
		return cli.WriteValueJSONFile(*outPath, snap)
	}
	return cli.EncodeJSON(out, snap)
}

// readSnapshot loads a committed baseline, rejecting snapshots written by
// a newer schema than this build speaks.
func readSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//nvlint:ignore errcontract read-only file; Decode surfaces any read error
	defer f.Close()
	var snap Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if snap.SchemaVersion > snapshotSchemaVersion {
		return nil, fmt.Errorf("baseline %s: unsupported schema_version %d (this build speaks %d)",
			path, snap.SchemaVersion, snapshotSchemaVersion)
	}
	return &snap, nil
}

// Compare renders the per-benchmark, per-metric deltas of cur against
// base: negative ns/op deltas are speedups, positive are regressions.
// Benchmarks present on only one side are listed as added/removed rather
// than silently skipped.  With threshold > 0 the comparison becomes a
// gate: any ns/op regression beyond threshold percent, or any allocs/op
// growth, fails with a summarizing error.
func Compare(out io.Writer, base, cur *Snapshot, threshold float64) error {
	baseByName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	var regressions []string
	tbl := cli.NewTable(out)
	tbl.Row("benchmark", "metric", "baseline", "current", "delta")
	for _, c := range cur.Benchmarks {
		b, ok := baseByName[c.Name]
		if !ok {
			tbl.Rowf("%s\t-\t(absent)\t(new)\t-", c.Name)
			continue
		}
		delete(baseByName, c.Name)
		units := make([]string, 0, len(c.Metrics))
		for unit := range c.Metrics {
			if _, shared := b.Metrics[unit]; shared {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			was, now := b.Metrics[unit], c.Metrics[unit]
			tbl.Rowf("%s\t%s\t%s\t%s\t%s", c.Name, unit, formatValue(was), formatValue(now), formatDelta(was, now))
			switch unit {
			case "ns/op":
				if threshold > 0 && was > 0 && (now-was)/was*100 > threshold {
					regressions = append(regressions,
						fmt.Sprintf("%s ns/op %s (threshold %+.1f%%)", c.Name, formatDelta(was, now), threshold))
				}
			case "allocs/op":
				if threshold > 0 && now > was {
					regressions = append(regressions,
						fmt.Sprintf("%s allocs/op grew %g -> %g", c.Name, was, now))
				}
			}
		}
	}
	// Baseline entries the fresh run no longer exercises, in input order.
	for _, b := range base.Benchmarks {
		if _, removed := baseByName[b.Name]; removed {
			tbl.Rowf("%s\t-\t(present)\t(removed)\t-", b.Name)
		}
	}
	if err := tbl.Flush(); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	return nil
}

// formatValue renders a metric value without float noise: integral values
// print as integers, the rest keep two decimals.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// formatDelta renders the relative change from was to now.
func formatDelta(was, now float64) string {
	if was == 0 {
		if now == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (now-was)/was*100)
}

// Parse reads `go test -bench` text and returns the snapshot.  Header
// lines (goos/goarch/cpu/pkg) fill the environment fields; Benchmark*
// result lines become entries; a FAIL line fails the parse, because a
// snapshot of a failed run would record garbage as a baseline.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{SchemaVersion: snapshotSchemaVersion}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Packages = append(snap.Packages, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "FAIL"):
			return nil, fmt.Errorf("input records a failed run: %s", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseResult parses one result line:
//
//	BenchmarkPipelineThroughput/batched-8   37   31415926 ns/op   524288 tx
//
// i.e. name[-procs], iteration count, then value/unit pairs.
func parseResult(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:   1,
		Metrics: make(map[string]float64, (len(fields)-2)/2),
	}
	// go test appends -GOMAXPROCS to the name whenever it exceeds 1.
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: bad metric value %q: %w", line, fields[i], err)
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, nil
}
