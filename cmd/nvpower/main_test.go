package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAppMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"filtered to", "DDR3", "PCRAM", "STTRAM", "MRAM", "normalized", "row policy open-page"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDumpAndReplay(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "mem.trc")

	var out bytes.Buffer
	if err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2", "-dump", trc}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trc); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}

	out.Reset()
	if err := run([]string{"-trace", trc, "-policy", "closed"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "replaying") || !strings.Contains(text, "closed-page") {
		t.Errorf("replay output incomplete:\n%s", text)
	}
}

// TestReplayReportByteIdentical is the dataflow acceptance check: pricing a
// dumped trace must reproduce the direct run's power report byte for byte,
// for both the raw and the gzip-compressed trace format.  The report is
// everything from the device table on — the preamble legitimately differs
// ("N references filtered" vs "replaying N transactions").
func TestReplayReportByteIdentical(t *testing.T) {
	report := func(text string) string {
		i := strings.Index(text, "\ndevice")
		if i < 0 {
			t.Fatalf("no device table in output:\n%s", text)
		}
		return text[i:]
	}
	for _, name := range []string{"mem.trc", "mem.trc.gz"} {
		trc := filepath.Join(t.TempDir(), name)
		var direct bytes.Buffer
		if err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2", "-dump", trc}, &direct); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(direct.String(), "wrote") {
			t.Fatalf("%s: dump not reported:\n%s", name, direct.String())
		}
		var replayed bytes.Buffer
		if err := run([]string{"-trace", trc}, &replayed); err != nil {
			t.Fatal(err)
		}
		if d, r := report(direct.String()), report(replayed.String()); d != r {
			t.Errorf("%s: replayed power report differs from direct run:\n--- direct ---\n%s\n--- replayed ---\n%s", name, d, r)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing source must error")
	}
	if err := run([]string{"-app", "gtc", "-trace", "x"}, &out); err == nil {
		t.Error("both sources must error")
	}
	if err := run([]string{"-app", "gtc", "-policy", "weird"}, &out); err == nil {
		t.Error("unknown policy must error")
	}
	if err := run([]string{"-trace", "/nonexistent/file.trc"}, &out); err == nil {
		t.Error("missing trace file must error")
	}
}

func TestRunDumpCompressed(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "mem.trc.gz")
	var out bytes.Buffer
	if err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "1", "-dump", trc}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("dump with .gz suffix must be gzip-compressed")
	}
	out.Reset()
	if err := run([]string{"-trace", trc}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replaying") {
		t.Error("compressed trace replay failed")
	}
}
