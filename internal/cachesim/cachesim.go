// Package cachesim implements the configurable cache hierarchy simulator
// embedded in NV-SCAVENGER (paper §III, Table II).
//
// It consumes the raw access stream from the instrumentation substrate and
// emits the filtered main-memory trace: last-level-cache miss fills and
// dirty-line writebacks.  That trace is what the memory power simulator
// prices, because only those references reach the DRAM/NVRAM devices.
//
// The default configuration matches Table II of the paper: a private 32 KB
// 4-way L1 data cache with 64-byte lines and a no-write-allocate policy, and
// a private 1 MB 16-way LRU L2 with write-allocate.  Both levels are
// write-back.
package cachesim

import (
	"fmt"

	"nvscavenger/internal/resilience"
	"nvscavenger/internal/trace"
)

// Replacement selects the victim policy within a set.
type Replacement uint8

const (
	// LRU evicts the least-recently-used way (Table II's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
	// RandomRepl evicts a pseudo-random way (deterministic xorshift).
	RandomRepl
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case FIFO:
		return "FIFO"
	case RandomRepl:
		return "random"
	}
	return "LRU"
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name labels the level in reports ("L1D", "L2").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineSize is the cache line size in bytes (shared by all levels).
	LineSize int
	// WriteAllocate controls whether a write miss fills the level.  With
	// no-write-allocate, a write miss is forwarded down without filling.
	WriteAllocate bool
	// Replacement selects the victim policy (default LRU, as Table II).
	Replacement Replacement
}

func (c LevelConfig) sets() int { return c.SizeBytes / (c.Ways * c.LineSize) }

func (c LevelConfig) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cachesim: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cachesim: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.SizeBytes%(c.Ways*c.LineSize) != 0 {
		return fmt.Errorf("cachesim: %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cachesim: %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Config describes the full hierarchy.
type Config struct {
	L1 LevelConfig
	L2 LevelConfig
}

// Validate checks both levels' geometry and the cross-level invariant the
// hierarchy assumes: one line size shared by all levels.  A mismatched
// configuration would silently compute wrong writeback line addresses
// (L1 victims re-aligned with L2's mask), so it is an error, not a wish.
func (c Config) Validate() error {
	if err := c.L1.validate(); err != nil {
		return err
	}
	if err := c.L2.validate(); err != nil {
		return err
	}
	if c.L1.LineSize != c.L2.LineSize {
		return fmt.Errorf("cachesim: mixed line sizes %d/%d (LineSize is shared by all levels)",
			c.L1.LineSize, c.L2.LineSize)
	}
	return nil
}

// PaperConfig returns the Table II configuration: L1D 32 KB 4-way 64 B
// no-write-allocate; L2 1 MB 16-way 64 B LRU write-allocate.
func PaperConfig() Config {
	return Config{
		L1: LevelConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, LineSize: 64, WriteAllocate: false},
		L2: LevelConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LineSize: 64, WriteAllocate: true},
	}
}

// LevelStats counts events at one cache level.
type LevelStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions passed down
}

// Accesses returns hits+misses.
func (s LevelStats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRatio returns misses/accesses (0 for an idle level).
func (s LevelStats) MissRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// HitRatio returns hits/accesses (0 for an idle level).
func (s LevelStats) HitRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse implements LRU: larger is more recent.
	lastUse uint64
}

// level is one set-associative write-back cache.
type level struct {
	cfg      LevelConfig
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    uint64
	rng      uint64 // xorshift state for random replacement
	stats    LevelStats
	// muted suspends statistics (not state): lines still fill, age and
	// evict so the simulation stays exact, but the counters only see the
	// iteration span this hierarchy's shard owns.
	muted bool
}

func newLevel(cfg LevelConfig) (*level, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.sets()
	l := &level{cfg: cfg, sets: make([][]line, n), setMask: uint64(n - 1), rng: 0x2545F4914F6CDD1D}
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Ways)
	}
	for b := cfg.LineSize; b > 1; b >>= 1 {
		l.lineBits++
	}
	return l, nil
}

// evicted describes a line pushed out of a level.
type evicted struct {
	lineAddr uint64
	dirty    bool
}

// access looks up a line address.  On a miss with allocate=true the line is
// filled, possibly evicting another line (returned).  markDirty sets the
// dirty bit on the (hit or freshly filled) line.
func (l *level) access(lineAddr uint64, markDirty, allocate bool) (hit bool, ev evicted, hasEv bool) {
	l.clock++
	setIdx := (lineAddr >> l.lineBits) & l.setMask
	tag := lineAddr >> l.lineBits
	set := l.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if l.cfg.Replacement != FIFO {
				set[i].lastUse = l.clock // FIFO keeps the fill stamp
			}
			if markDirty {
				set[i].dirty = true
			}
			if !l.muted {
				l.stats.Hits++
			}
			return true, evicted{}, false
		}
	}
	if !l.muted {
		l.stats.Misses++
	}
	if !allocate {
		return false, evicted{}, false
	}
	// Choose victim: an invalid way, else by the replacement policy.  For
	// FIFO, lastUse is only stamped on fill (below), so the LRU comparison
	// degenerates to insertion order; for random, xorshift picks the way.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if l.cfg.Replacement == RandomRepl {
		l.rng ^= l.rng << 13
		l.rng ^= l.rng >> 7
		l.rng ^= l.rng << 17
		victim = int(l.rng % uint64(len(set)))
	}
	if set[victim].valid {
		ev = evicted{lineAddr: set[victim].tag << l.lineBits, dirty: set[victim].dirty}
		hasEv = true
		if !l.muted {
			l.stats.Evictions++
			if ev.dirty {
				l.stats.Writebacks++
			}
		}
	}
fill:
	set[victim] = line{tag: tag, valid: true, dirty: markDirty, lastUse: l.clock}
	return false, ev, hasEv
}

// invalidate drops a line if present, returning whether it was dirty.
func (l *level) invalidate(lineAddr uint64) (present, dirty bool) {
	setIdx := (lineAddr >> l.lineBits) & l.setMask
	tag := lineAddr >> l.lineBits
	set := l.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

// TxSink receives filtered main-memory transactions one at a time — the
// legacy per-transaction consumer contract.  The hierarchy itself delivers
// transactions in batches (trace.TxSink); wrap a legacy consumer with PerTx
// to attach it.
type TxSink interface {
	Transaction(trace.Transaction) error
}

// TxSinkFunc adapts a function to TxSink.
type TxSinkFunc func(trace.Transaction) error

// Transaction calls f(t).
func (f TxSinkFunc) Transaction(t trace.Transaction) error { return f(t) }

// PerTx adapts a legacy per-transaction consumer to the batched
// trace.TxSink contract the hierarchy emits on.
func PerTx(s TxSink) trace.TxSink {
	return trace.TxSinkFunc(func(batch []trace.Transaction) error {
		for _, t := range batch {
			if err := s.Transaction(t); err != nil {
				return err
			}
		}
		return nil
	})
}

// Hierarchy is the two-level data-cache simulator.  It implements trace.Sink
// so the instrumentation tracer can flush access batches straight into it,
// and it emits the filtered main-memory trace the same way it receives
// references: staged into an internal batch and handed to a trace.TxSink in
// bulk, instead of one interface call per line fill or writeback.
type Hierarchy struct {
	l1, l2 *level
	txbuf  *trace.TxBuffer
	// accesses drives the pseudo-cycle stamp on emitted transactions: with
	// no core timing model, "cycles" advance one per processed reference,
	// which is what a trace-fed power simulation expects (§IV: requests are
	// processed at full speed and average power is reported).
	accesses uint64
	// cycleSource, when set, overrides the pseudo-cycle stamp with a real
	// core clock (the cpusim integration).  It runs at emit time, so stamps
	// reflect issue order even though delivery is batched.
	cycleSource func() uint64

	// MemReads and MemWrites count emitted transactions.
	MemReads  uint64
	MemWrites uint64

	// muted suspends transaction emission and statistics while the shard
	// that owns this hierarchy replays iterations another shard owns: lines
	// still move (state must match a full run exactly) and the pseudo-cycle
	// clock still advances (emitted cycle stamps must match), but nothing is
	// counted or emitted.
	muted bool
}

// New builds a Hierarchy; sink may be nil to only collect statistics.
func New(cfg Config, sink trace.TxSink) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, err := newLevel(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := newLevel(cfg.L2)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{l1: l1, l2: l2}
	if sink != nil {
		h.txbuf = trace.NewTxBuffer(sink, 0)
	}
	return h, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, sink trace.TxSink) *Hierarchy {
	h, err := New(cfg, sink)
	if err != nil {
		panic(err)
	}
	return h
}

// NewWithArena is New with the transaction staging slab drawn from a shared
// batch arena instead of a private allocation; call ReleaseBuffers after the
// final Drain to hand it back.
func NewWithArena(cfg Config, sink trace.TxSink, a *trace.Arena[trace.Transaction]) (*Hierarchy, error) {
	h, err := New(cfg, nil)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		h.txbuf = trace.NewArenaTxBuffer(sink, a)
	}
	return h, nil
}

// ReleaseBuffers hands an arena-drawn staging slab back to its arena.  The
// hierarchy must not be used afterwards.
func (h *Hierarchy) ReleaseBuffers() {
	if h.txbuf != nil {
		h.txbuf.Release()
	}
}

// MergeShards folds the per-shard hierarchies of a sharded run into the last
// shard's hierarchy and returns it.  Every shard simulated the full access
// stream (muting only suspends counting), so the last shard already holds
// the exact final line state; counters were recorded under disjoint
// iteration ownership, so summing the donors' counters into the base
// reproduces the full run's statistics exactly.  The donors must not be
// reused.
func MergeShards(shards []*Hierarchy) *Hierarchy {
	base := shards[len(shards)-1]
	for _, s := range shards[:len(shards)-1] {
		base.l1.stats.Hits += s.l1.stats.Hits
		base.l1.stats.Misses += s.l1.stats.Misses
		base.l1.stats.Evictions += s.l1.stats.Evictions
		base.l1.stats.Writebacks += s.l1.stats.Writebacks
		base.l2.stats.Hits += s.l2.stats.Hits
		base.l2.stats.Misses += s.l2.stats.Misses
		base.l2.stats.Evictions += s.l2.stats.Evictions
		base.l2.stats.Writebacks += s.l2.stats.Writebacks
		base.MemReads += s.MemReads
		base.MemWrites += s.MemWrites
	}
	return base
}

// SetCycleSource installs a clock for the Cycle stamp on emitted
// transactions, replacing the default one-pseudo-cycle-per-reference count.
// The CPU timing model couples itself to the hierarchy this way (§IV's
// integrated mode): the stamp is taken at emit time, before batching, so a
// downstream power simulator sees real issue timing.
func (h *Hierarchy) SetCycleSource(fn func() uint64) { h.cycleSource = fn }

// LineSize returns the hierarchy's cache line size.
func (h *Hierarchy) LineSize() int { return h.l1.cfg.LineSize }

// L1Stats returns the counters of the first level.
func (h *Hierarchy) L1Stats() LevelStats { return h.l1.stats }

// L2Stats returns the counters of the second level.
func (h *Hierarchy) L2Stats() LevelStats { return h.l2.stats }

// Err returns the first sink error encountered.
func (h *Hierarchy) Err() error {
	if h.txbuf == nil {
		return nil
	}
	return h.txbuf.Err()
}

// SetSinkRetry switches the transaction staging buffer into recoverable
// mode: failing sink flushes are retried per the policy before tripping
// sticky.  No-op for statistics-only hierarchies.
func (h *Hierarchy) SetSinkRetry(p resilience.RetryPolicy) {
	if h.txbuf != nil {
		h.txbuf.SetRetry(p)
	}
}

// TxDropped returns the transactions dropped after the sink tripped.
func (h *Hierarchy) TxDropped() uint64 {
	if h.txbuf == nil {
		return 0
	}
	return h.txbuf.Dropped()
}

// TxRetries returns the sink-flush retries the recoverable mode performed.
func (h *Hierarchy) TxRetries() uint64 {
	if h.txbuf == nil {
		return 0
	}
	return h.txbuf.Retries()
}

// TxTrips returns 1 once the sink error has tripped sticky, else 0.
func (h *Hierarchy) TxTrips() uint64 {
	if h.txbuf == nil {
		return 0
	}
	return h.txbuf.Trips()
}

// FlushTx drains the staged transaction batch into the sink.  Drain calls
// it at end of simulation; call it directly to push out a partial batch
// mid-run (e.g. before sampling a downstream consumer's state).
func (h *Hierarchy) FlushTx() error {
	if h.txbuf == nil {
		return nil
	}
	return h.txbuf.Flush()
}

// SetMuted toggles statistics and transaction emission, leaving simulation
// state (line contents, LRU order, cycle clock) live.  Sharded stacks mute a
// shard's hierarchy outside its owned iteration span; the tracer flushes its
// staging buffer before every flip so batches never straddle a mute change.
func (h *Hierarchy) SetMuted(m bool) {
	h.muted = m
	h.l1.muted = m
	h.l2.muted = m
}

func (h *Hierarchy) emit(addr uint64, write bool) {
	if h.muted {
		return
	}
	if write {
		h.MemWrites++
	} else {
		h.MemReads++
	}
	if h.txbuf == nil {
		return
	}
	cycle := h.accesses
	if h.cycleSource != nil {
		cycle = h.cycleSource()
	}
	h.txbuf.Add(trace.Transaction{Addr: addr, Write: write, Cycle: cycle})
}

// ServiceLevel reports the deepest structure that had to service a
// reference; the performance model maps it to an access latency.
type ServiceLevel uint8

const (
	// ServicedL1 means the reference hit in the first level.
	ServicedL1 ServiceLevel = iota
	// ServicedL2 means it missed L1 and hit L2.
	ServicedL2
	// ServicedMem means it required a main-memory transaction.
	ServicedMem
)

// String names the level.
func (s ServiceLevel) String() string {
	switch s {
	case ServicedL1:
		return "L1"
	case ServicedL2:
		return "L2"
	}
	return "memory"
}

// Access runs one reference through the hierarchy and reports the deepest
// level that serviced it.  References spanning a line boundary are split
// into per-line references, as hardware would; the slowest line wins.
// A zero-size access is treated as a single-line touch: without the guard,
// End()-1 underflows and the per-line loop's end marker precedes its start.
func (h *Hierarchy) Access(a trace.Access) ServiceLevel {
	lineSize := uint64(h.l1.cfg.LineSize)
	first := a.Addr &^ (lineSize - 1)
	last := first
	if a.Size > 0 {
		last = (a.End() - 1) &^ (lineSize - 1)
	}
	deepest := ServicedL1
	for lineAddr := first; ; lineAddr += lineSize {
		if lvl := h.accessLine(lineAddr, a.IsWrite()); lvl > deepest {
			deepest = lvl
		}
		if lineAddr == last {
			break
		}
	}
	return deepest
}

func (h *Hierarchy) accessLine(lineAddr uint64, isWrite bool) ServiceLevel {
	h.accesses++

	// L1: no-write-allocate means a write miss does not fill L1 and is
	// forwarded to L2 as a write.
	allocate := !isWrite || h.l1.cfg.WriteAllocate
	hit, ev, hasEv := h.l1.access(lineAddr, isWrite, allocate)
	if hasEv && ev.dirty {
		// Dirty L1 victim is written back into L2.
		h.l2WriteBack(ev.lineAddr)
	}
	if hit {
		return ServicedL1
	}

	// L1 miss: the request goes to L2.  A read miss (or write-allocate
	// write miss) that filled L1 appears at L2 as a read fill request; a
	// no-write-allocate write miss appears as a write.
	if isWrite && !h.l1.cfg.WriteAllocate {
		return h.l2Write(lineAddr)
	}
	return h.l2Read(lineAddr)
}

// l2Read services an L1 fill request.
func (h *Hierarchy) l2Read(lineAddr uint64) ServiceLevel {
	hit, ev, hasEv := h.l2.access(lineAddr, false, true)
	if hasEv && ev.dirty {
		h.emit(ev.lineAddr, true)
	}
	if !hit {
		h.emit(lineAddr, false)
		return ServicedMem
	}
	return ServicedL2
}

// l2Write services a no-write-allocate L1 write miss.  L2 is write-allocate:
// on miss the line is fetched from memory and then dirtied.
func (h *Hierarchy) l2Write(lineAddr uint64) ServiceLevel {
	hit, ev, hasEv := h.l2.access(lineAddr, true, true)
	if hasEv && ev.dirty {
		h.emit(ev.lineAddr, true)
	}
	if !hit {
		// Write-allocate fill: read the line from memory first.
		h.emit(lineAddr, false)
		return ServicedMem
	}
	return ServicedL2
}

// l2WriteBack installs a dirty L1 victim in L2 (write-allocate on writeback).
func (h *Hierarchy) l2WriteBack(lineAddr uint64) {
	hit, ev, hasEv := h.l2.access(lineAddr, true, true)
	if hasEv && ev.dirty {
		h.emit(ev.lineAddr, true)
	}
	if !hit {
		h.emit(lineAddr, false)
	}
}

// Flush implements trace.Sink for direct attachment to a memtrace.Tracer.
func (h *Hierarchy) Flush(batch []trace.Access) error {
	for _, a := range batch {
		h.Access(a)
	}
	return h.Err()
}

// Drain writes back every dirty line in both levels, emitting the final
// writeback transactions, then flushes the staged transaction batch and
// returns the sink's sticky error, if any.  Call once at end of simulation
// so that resident dirty data is priced like DRAMSim2's final flush.
func (h *Hierarchy) Drain() error {
	for _, set := range h.l1.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				h.l2WriteBack(set[i].tag << h.l1.lineBits)
				set[i].dirty = false
			}
		}
	}
	for _, set := range h.l2.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				h.emit(set[i].tag<<h.l2.lineBits, true)
				set[i].dirty = false
			}
		}
	}
	return h.FlushTx()
}
