// Power study: push the GTC proxy's cache-filtered memory trace through the
// DRAMSim-style power model for all four Table IV device profiles, under
// both row-buffer policies.
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/pipeline"

	_ "nvscavenger/internal/apps/gtcmini"
)

func main() {
	app, err := apps.New("gtc", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cacheCfg := cachesim.PaperConfig()
	stack := pipeline.MustBuild(pipeline.Config{Cache: &cacheCfg, CaptureTx: true})
	if err := apps.Run(app, stack.Tracer, 10); err != nil {
		log.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		log.Fatal(err)
	}
	txs := stack.Transactions()

	hier := stack.Hierarchy
	l1, l2 := hier.L1Stats(), hier.L2Stats()
	fmt.Printf("== %s memory traffic ==\n", app.Name())
	fmt.Printf("references: %d  L1 miss %.2f%%  L2 miss %.2f%%\n",
		l1.Accesses(), l1.MissRatio()*100, l2.MissRatio()*100)
	fmt.Printf("main-memory transactions: %d (%d reads, %d writebacks)\n\n",
		len(txs), hier.MemReads, hier.MemWrites)

	for _, policy := range []dramsim.RowPolicy{dramsim.OpenPage, dramsim.ClosedPage} {
		reps, err := dramsim.Compare(dramsim.PaperGeometry(), policy, dramsim.Profiles(), txs)
		if err != nil {
			log.Fatal(err)
		}
		norm := dramsim.Normalize(reps)
		fmt.Printf("--- %s ---\n", policy)
		fmt.Printf("%-8s %10s %10s %10s %12s %10s\n",
			"device", "total mW", "burst", "bg+refr", "row hit %", "normalized")
		for i, r := range reps {
			fmt.Printf("%-8s %10.1f %10.1f %10.1f %12.1f %10.3f\n",
				r.Device, r.TotalMW, r.BurstMW, r.BackgroundMW+r.RefreshMW,
				r.RowHitRatio()*100, norm[i])
		}
		fmt.Println()
	}
}
