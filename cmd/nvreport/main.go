// Command nvreport regenerates every table and figure of the paper's
// evaluation section in one run.  The instrumented app runs behind the
// exhibits fan out across a bounded worker pool (internal/runner); -jobs
// bounds the pool and -progress streams per-run wall time and reference
// throughput to stderr.  Parallel output is byte-identical to -jobs 1.
//
// Usage:
//
//	nvreport                     # everything, calibrated scale
//	nvreport -scale 0.25         # faster, reduced problem sizes
//	nvreport -only table5,fig12  # a subset
//	nvreport -jobs 8             # bound the worker pool explicitly
//	nvreport -metrics m.json     # also dump the observability snapshot
//	nvreport -fault sink:every=50,seed=7   # seeded chaos run, degrades gracefully
//
// Exhibits: table1, table5, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, table6, fig12, placement.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nvscavenger/internal/cli"
	"nvscavenger/internal/experiments"
	"nvscavenger/internal/faults"
	"nvscavenger/internal/runner"
)

func main() { cli.Main("nvreport", run) }

// exhibit maps a selector name to its generator.
type exhibit struct {
	name string
	gen  func(*experiments.Session, io.Writer) error
}

var objectFigures = map[string]struct {
	app string
	num int
}{
	"fig3": {"nek5000", 3},
	"fig4": {"cam", 4},
	"fig5": {"gtc", 5},
	"fig6": {"s3d", 6},
}

var varianceFigures = map[string]struct {
	app string
	num int
}{
	"fig8":  {"nek5000", 8},
	"fig9":  {"cam", 9},
	"fig10": {"s3d", 10},
	"fig11": {"gtc", 11},
}

func exhibits() []exhibit {
	out := []exhibit{
		{"table1", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.Table1()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatTable1(rows))
			return err
		}},
		{"table5", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.Table5()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatTable5(rows))
			return err
		}},
		{"fig2", func(s *experiments.Session, w io.Writer) error {
			recs, fig, err := s.Figure2()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatFigure2(recs, fig))
			return err
		}},
	}
	for _, key := range []string{"fig3", "fig4", "fig5", "fig6"} {
		spec := objectFigures[key]
		out = append(out, exhibit{key, func(s *experiments.Session, w io.Writer) error {
			recs, err := s.ObjectFigure(spec.app)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatObjectFigure(spec.app, spec.num, recs))
			return err
		}})
	}
	out = append(out, exhibit{"fig7", func(s *experiments.Session, w io.Writer) error {
		cdfs, err := s.Figure7()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, experiments.FormatFigure7(cdfs))
		return err
	}})
	for _, key := range []string{"fig8", "fig9", "fig10", "fig11"} {
		spec := varianceFigures[key]
		out = append(out, exhibit{key, func(s *experiments.Session, w io.Writer) error {
			ratio, rate, err := s.VarianceFigure(spec.app)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatVarianceFigure(spec.app, spec.num, ratio, rate))
			return err
		}})
	}
	out = append(out,
		exhibit{"table6", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.Table6()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatTable6(rows))
			return err
		}},
		exhibit{"fig12", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.Figure12()
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w, experiments.FormatFigure12(rows)); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%s: %s\n", r.App, experiments.FormatSweepShape(r.Results)); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintln(w)
			return err
		}},
		exhibit{"placement", func(s *experiments.Session, w io.Writer) error {
			plans, err := s.Placement()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatPlacement(plans))
			return err
		}},
		exhibit{"placementcmp", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.PlacementComparison()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatPlacementComparison(rows))
			return err
		}},
		exhibit{"hybrid", func(s *experiments.Session, w io.Writer) error {
			pts, err := s.HybridSweep("nek5000", []int{0, 8, 32, 128, 512, 2048})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatHybridSweep("nek5000", pts))
			return err
		}},
		exhibit{"checkpoint", func(s *experiments.Session, w io.Writer) error {
			pts, err := s.CheckpointStudy("nek5000", []int{1000, 10000, 100000, 500000, 1000000})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatCheckpointStudy("nek5000", pts))
			return err
		}},
		exhibit{"wear", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.WearStudy("gtc")
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatWearStudy("gtc", rows))
			return err
		}},
		exhibit{"sampling", func(s *experiments.Session, w io.Writer) error {
			rows, err := s.SamplingStudy("nek5000", []int{1, 16, 64, 256})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatSamplingStudy("nek5000", rows))
			return err
		}},
		exhibit{"conformance", func(s *experiments.Session, w io.Writer) error {
			checks, err := s.Conformance()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, experiments.FormatConformance(checks))
			return err
		}},
	)
	return out
}

// progressPrinter returns a runner progress callback writing one line per
// run start/completion; it is invoked from worker goroutines, so the
// writer is serialized with a mutex.
func progressPrinter(w io.Writer) func(runner.Event) {
	var mu sync.Mutex
	start := time.Now()
	return func(ev runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		elapsed := time.Since(start).Seconds()
		switch ev.Kind {
		case runner.EventStart:
			fmt.Fprintf(w, "[%7.2fs] %-28s started\n", elapsed, ev.Key)
		case runner.EventDone:
			mrefs := 0.0
			if ev.Wall > 0 {
				mrefs = float64(ev.Refs) / 1e6 / ev.Wall.Seconds()
			}
			fmt.Fprintf(w, "[%7.2fs] %-28s done in %.2fs (%.1fM refs/s)\n",
				elapsed, ev.Key, ev.Wall.Seconds(), mrefs)
		case runner.EventError:
			fmt.Fprintf(w, "[%7.2fs] %-28s failed after %.2fs: %v\n",
				elapsed, ev.Key, ev.Wall.Seconds(), ev.Err)
		}
	}
}

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvreport")
	scale := fs.Float64("scale", 1.0, "problem scale for every experiment")
	iters := fs.Int("iterations", 10, "main-loop iterations")
	only := fs.String("only", "", "comma-separated exhibit subset (e.g. table5,fig12)")
	jobs := fs.Int("jobs", 0, "maximum concurrent instrumented runs (0 = GOMAXPROCS)")
	parallel := fs.Bool("parallel", true, "deprecated: -parallel=false is shorthand for -jobs 1")
	progress := fs.Bool("progress", true, "stream per-run progress lines to stderr")
	outdir := fs.String("outdir", "", "also write each exhibit to <outdir>/<name>.txt")
	metricsOut := fs.String("metrics", "", "write the run's observability snapshot to this file (.json for JSON, text otherwise)")
	faultSpec := fs.String("fault", "", "chaos run: deterministic fault spec, e.g. sink:every=50,seed=7 or worker:prob=0.3,seed=9 (degrades gracefully)")
	retries := fs.Int("retries", 0, "re-execute a failed instrumented run up to this many attempts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	j := *jobs
	if !*parallel {
		j = 1
	}
	sessOpts := []experiments.Option{
		experiments.WithScale(*scale),
		experiments.WithIterations(*iters),
		experiments.WithJobs(j),
	}
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		sessOpts = append(sessOpts, experiments.WithFaults(spec))
	}
	if *retries > 1 {
		sessOpts = append(sessOpts, experiments.WithRetry(*retries))
	}
	if *progress {
		sessOpts = append(sessOpts, experiments.WithProgress(progressPrinter(os.Stderr)))
	}
	sess := experiments.NewSession(sessOpts...)
	start := time.Now()
	fmt.Fprintf(out, "NV-SCAVENGER evaluation reproduction (scale %.2f, %d iterations)\n",
		sess.Options().Scale, sess.Options().Iterations)
	fmt.Fprintf(out, "generated %s\n\n", time.Now().Format(time.RFC3339))

	known := map[string]bool{}
	for _, ex := range exhibits() {
		known[ex.name] = true
	}
	for name := range want {
		if !known[name] {
			return fmt.Errorf("unknown exhibit %q", name)
		}
	}

	if len(want) == 0 {
		// All exhibits requested: warm every instrumented run across the
		// worker pool before the (ordered) report generation starts.
		if err := sess.Warm(); err != nil {
			return err
		}
	}

	for _, ex := range exhibits() {
		if len(want) > 0 && !want[ex.name] {
			continue
		}
		w := out
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, ex.name+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(out, f)
		}
		err := ex.gen(sess, w)
		if err != nil && sess.Degraded() {
			// Chaos/degraded run: an exhibit whose runs were exhausted is
			// annotated in place and the sweep continues.
			_, werr := fmt.Fprintf(w, "%s: DEGRADED: %v\n\n", ex.name, err)
			err = werr
		}
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
	}

	if sess.Degraded() {
		if runErrs := sess.RunErrors(); len(runErrs) > 0 {
			fmt.Fprintln(out, "Degraded runs:")
			for _, re := range runErrs {
				fmt.Fprintf(out, "  %-36s %s\n", re.Key, re.Err)
			}
			fmt.Fprintln(out)
		}
	}

	if *metricsOut != "" {
		if err := cli.WriteMetricsFile(*metricsOut, sess.MetricsSnapshot()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nvreport: wrote metrics snapshot to %s\n", *metricsOut)
	}

	if *progress {
		m := sess.Metrics()
		if sum := m.WallSummary(); sum.Count() > 0 {
			elapsed := time.Since(start).Seconds()
			agg := 0.0
			if elapsed > 0 {
				agg = float64(m.TotalRefs()) / 1e6 / elapsed
			}
			fmt.Fprintf(os.Stderr,
				"nvreport: %d runs on %d workers in %.2fs (%d cache hits), run wall mean %.2fs max %.2fs, aggregate %.1fM refs/s\n",
				sum.Count(), sess.Jobs(), elapsed, m.Hits, sum.Mean(), sum.Max(), agg)
		}
	}
	return nil
}
