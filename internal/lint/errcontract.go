package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errcontract enforces the repo's error-handling contract outside tests:
//
//   - no discarded error results, neither `_ = f()` nor a bare call
//     statement (fmt printing and in-memory builders are exempt: they
//     cannot fail in a way the tools act on);
//   - fmt.Errorf wraps error operands with %w, never %v/%s, so errors.Is
//     and errors.As keep working through the tools' error chains;
//   - no panic outside internal/faults (the mode=panic injection paths),
//     main functions, and Must* constructors.  Invariant assertions that
//     the runner deliberately absorbs carry an inline suppression naming
//     that contract.
type errcontract struct {
	nopFinish
}

func init() {
	registerPass("errcontract", func() Pass { return &errcontract{} })
}

func (*errcontract) Name() string { return "errcontract" }
func (*errcontract) Doc() string {
	return "no discarded errors, fmt.Errorf wraps with %w, no panic outside faults/main/Must*"
}

func (e *errcontract) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		inspectDecls(f, func(decl ast.Decl, fn string) {
			ast.Inspect(decl, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					e.checkBareCall(p, r, s.X)
				case *ast.DeferStmt:
					e.checkBareCall(p, r, s.Call)
				case *ast.GoStmt:
					e.checkBareCall(p, r, s.Call)
				case *ast.AssignStmt:
					e.checkDiscard(p, r, s)
				case *ast.CallExpr:
					e.checkErrorf(p, r, s)
					e.checkPanic(p, r, fn, s)
				}
				return true
			})
		})
	}
}

// exemptCall reports whether an unchecked call is sanctioned: fmt's
// printing family and writes into in-memory accumulators (strings.Builder,
// bytes.Buffer, hash.Hash), whose errors are nil by documented contract.
// The receiver is judged by the static type of the receiver *expression*,
// so a hash.Hash64's Write is exempt even though the method is promoted
// from the embedded io.Writer.
func exemptCall(p *Package, call *ast.CallExpr) bool {
	f := funcObject(p, call.Fun)
	if f == nil {
		return false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := p.Info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkgPath := named.Obj().Pkg().Path()
	// hash.Hash documents that Write never returns an error.
	if pkgPath == "hash" || strings.HasPrefix(pkgPath, "hash/") {
		return true
	}
	switch pkgPath + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// checkBareCall flags a call used as a statement (plain, deferred or
// spawned) whose result set includes an error.
func (e *errcontract) checkBareCall(p *Package, r *Reporter, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || !returnsError(p, call) || exemptCall(p, call) {
		return
	}
	r.Report(call.Pos(), "errcontract", "result of %s includes an error that is discarded", callName(p, call))
}

// checkDiscard flags `_ = f()` and `v, _ := g()` forms that blank an
// error-typed result.
func (e *errcontract) checkDiscard(p *Package, r *Reporter, s *ast.AssignStmt) {
	// Tuple form: lhs blanks map positionally onto one call's results.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok || exemptCall(p, call) {
			return
		}
		tup, ok := p.Info.TypeOf(call).(*types.Tuple)
		if !ok || tup.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				r.Report(lhs.Pos(), "errcontract", "error result of %s discarded with _", callName(p, call))
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		rhs := ast.Unparen(s.Rhs[i])
		if call, ok := rhs.(*ast.CallExpr); ok && exemptCall(p, call) {
			continue
		}
		if isErrorType(p.Info.TypeOf(rhs)) {
			r.Report(lhs.Pos(), "errcontract", "error value discarded with _")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a call target for diagnostics ("pkg.Func" or
// "Type.Method").
func callName(p *Package, call *ast.CallExpr) string {
	f := funcObject(p, call.Fun)
	if f == nil {
		return "call"
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// checkErrorf flags fmt.Errorf formatting an error operand with a verb
// other than %w.
func (e *errcontract) checkErrorf(p *Package, r *Reporter, call *ast.CallExpr) {
	f := funcObject(p, call.Fun)
	if !isPkgFunc(f, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		return
	}
	for i, verb := range verbs {
		arg := call.Args[i+1]
		if verb != 'w' && isErrorType(p.Info.TypeOf(arg)) {
			r.Report(arg.Pos(), "errcontract",
				"error formatted with %%%c; wrap with %%w so errors.Is/As see the cause", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order.  Explicit argument indexes and star widths make the mapping
// positional-unsafe; the scan then reports !ok and the check backs off.
func formatVerbs(format string) (verbs []rune, ok bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			return nil, false
		}
		if runes[i] == '%' {
			continue
		}
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.", runes[i]) {
			i++
		}
		if i >= len(runes) {
			return nil, false
		}
		if runes[i] == '[' || runes[i] == '*' {
			return nil, false
		}
		verbs = append(verbs, runes[i])
	}
	return verbs, true
}

// checkPanic flags panic calls outside the sanctioned contexts.
func (e *errcontract) checkPanic(p *Package, r *Reporter, fn string, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return
	}
	if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
		return // a local function shadowing the builtin
	}
	if strings.HasSuffix(p.ModRel(), "internal/faults") {
		return
	}
	base := fn
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		base = base[i+1:]
	}
	if base == "main" && p.Pkg.Name() == "main" {
		return
	}
	if strings.HasPrefix(base, "Must") {
		return
	}
	r.Report(call.Pos(), "errcontract",
		"panic outside internal/faults, main and Must* (return an error, or suppress with the invariant's contract)")
}
