package pipeline

import (
	"errors"
	"testing"

	"nvscavenger/internal/cachesim"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/obs"
	"nvscavenger/internal/trace"
)

func TestTeeFansOutInOrderAndStopsOnError(t *testing.T) {
	var order []string
	mk := func(name string) Stage[int] {
		return StageFunc[int](func(batch []int) error {
			order = append(order, name)
			return nil
		})
	}
	boom := errors.New("boom")
	tee := Tee(mk("a"), mk("b"), StageFunc[int](func([]int) error { return boom }), mk("d"))
	if err := tee.Flush([]int{1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v: Tee must visit stages in order and stop at the error", order)
	}
}

func TestFilterRebatchesAndSkipsEmpty(t *testing.T) {
	var got [][]int
	next := StageFunc[int](func(batch []int) error {
		got = append(got, append([]int{}, batch...))
		return nil
	})
	f := Filter(func(v int) bool { return v%2 == 0 }, next)
	if err := f.Flush([]int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush([]int{1, 3, 5}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("downstream saw %d batches, want 1 (all-odd batch must be dropped)", len(got))
	}
	if len(got[0]) != 2 || got[0][0] != 2 || got[0][1] != 4 {
		t.Fatalf("filtered batch = %v, want [2 4]", got[0])
	}
}

func TestCountedInstrumentsStage(t *testing.T) {
	reg := obs.NewRegistry()
	fail := false
	next := StageFunc[int](func([]int) error {
		if fail {
			return errors.New("sink down")
		}
		return nil
	})
	c := Counted(reg, "test", next, obs.L("app", "x"))
	if err := c.Flush([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := c.Flush([]int{4}); err == nil {
		t.Fatal("error must propagate through Counted")
	}
	s := reg.Snapshot()
	ls := []obs.Label{obs.L("app", "x"), obs.L("stage", "test")}
	if v, _ := s.Counter("pipeline_batches_total", ls...); v != 2 {
		t.Fatalf("batches = %d, want 2", v)
	}
	if v, _ := s.Counter("pipeline_events_total", ls...); v != 4 {
		t.Fatalf("events = %d, want 4", v)
	}
	if v, _ := s.Counter("pipeline_errors_total", ls...); v != 1 {
		t.Fatalf("errors = %d, want 1", v)
	}
}

func TestCountedNilRegistryIsPassthrough(t *testing.T) {
	next := StageFunc[int](func([]int) error { return nil })
	if got := Counted[int](nil, "s", next); got == nil {
		t.Fatal("nil registry must return the stage unchanged, not nil")
	}
}

func TestCaptureAccumulates(t *testing.T) {
	var c Capture[int]
	c.Flush([]int{1, 2})
	c.Flush([]int{3})
	if len(c.Items) != 3 || c.Items[2] != 3 {
		t.Fatalf("captured %v", c.Items)
	}
}

func TestTxAndPerfAdaptersRoundTrip(t *testing.T) {
	var txs []trace.Transaction
	sink := trace.TxSinkFunc(func(batch []trace.Transaction) error {
		txs = append(txs, batch...)
		return nil
	})
	stage := TxStage(sink)
	back := ToTxSink(stage)
	if err := back.FlushTx([]trace.Transaction{{Addr: 64}}); err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || txs[0].Addr != 64 {
		t.Fatalf("txs = %v", txs)
	}

	var evs []trace.PerfEvent
	psink := trace.PerfSinkFunc(func(batch []trace.PerfEvent) error {
		evs = append(evs, batch...)
		return nil
	})
	if err := ToPerfSink(PerfStage(psink)).FlushEvents([]trace.PerfEvent{{Gap: 7}}); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Gap != 7 {
		t.Fatalf("evs = %v", evs)
	}
}

func TestBuildRejectsTxConsumersWithoutCache(t *testing.T) {
	if _, err := Build(Config{CaptureTx: true}); err == nil {
		t.Fatal("CaptureTx without Cache must be rejected")
	}
	sink := trace.TxSinkFunc(func([]trace.Transaction) error { return nil })
	if _, err := Build(Config{TxSinks: []trace.TxSink{sink}}); err == nil {
		t.Fatal("TxSinks without Cache must be rejected")
	}
}

// drive runs a synthetic workload against a stack's tracer: a strided sweep
// over a 1 MB array, two passes, half of them writes.
func drive(t *testing.T, st *Stack) {
	t.Helper()
	tr := st.Tracer
	a, _ := tr.HeapF64("a", "pipeline_test.go:1", 128*1024)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < a.Len(); i += 8 {
			if i%16 == 0 {
				a.Store(i, float64(i))
			} else {
				a.Load(i)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEndToEndBatchesAndCaptures(t *testing.T) {
	reg := obs.NewRegistry()
	var teed []trace.Transaction
	teeSink := trace.TxSinkFunc(func(batch []trace.Transaction) error {
		teed = append(teed, batch...)
		return nil
	})
	var tapped int
	tap := trace.SinkFunc(func(batch []trace.Access) error {
		tapped += len(batch)
		return nil
	})
	cacheCfg := cachesim.PaperConfig()
	st, err := Build(Config{
		Cache:      &cacheCfg,
		CaptureTx:  true,
		TxSinks:    []trace.TxSink{teeSink},
		AccessTaps: []trace.Sink{tap},
		Metrics:    reg,
		Labels:     []obs.Label{obs.L("app", "synth")},
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, st)

	txs := st.Transactions()
	if len(txs) == 0 {
		t.Fatal("no transactions captured")
	}
	if len(teed) != len(txs) {
		t.Fatalf("tee saw %d transactions, capture saw %d: tee must mirror the stream", len(teed), len(txs))
	}
	if tapped == 0 {
		t.Fatal("access tap saw nothing")
	}
	if got := st.Hierarchy.MemReads + st.Hierarchy.MemWrites; uint64(len(txs)) != got {
		t.Fatalf("captured %d transactions, hierarchy counted %d", len(txs), got)
	}

	s := reg.Snapshot()
	ls := func(stage string) []obs.Label {
		return []obs.Label{obs.L("app", "synth"), obs.L("stage", stage)}
	}
	accEvents, ok := s.Counter("pipeline_events_total", ls("accesses")...)
	if !ok || accEvents == 0 {
		t.Fatal("missing accesses stage events")
	}
	txEvents, ok := s.Counter("pipeline_events_total", ls("transactions")...)
	if !ok || txEvents != uint64(len(txs)) {
		t.Fatalf("transactions stage counted %d events, want %d", txEvents, len(txs))
	}
	if txEvents >= accEvents {
		t.Fatalf("cache stage must filter: %d transactions vs %d accesses", txEvents, accEvents)
	}
	accBatches, _ := s.Counter("pipeline_batches_total", ls("accesses")...)
	if accBatches == 0 || accEvents/accBatches < 2 {
		t.Fatalf("accesses moved in %d batches for %d events: not batched", accBatches, accEvents)
	}
}

func TestBuildPerfStage(t *testing.T) {
	reg := obs.NewRegistry()
	var events int
	perf := trace.PerfSinkFunc(func(batch []trace.PerfEvent) error {
		events += len(batch)
		return nil
	})
	st, err := Build(Config{Perf: perf, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, st)
	if events == 0 {
		t.Fatal("perf sink saw no events")
	}
	got, ok := reg.Snapshot().Counter("pipeline_events_total", obs.L("stage", "perf"))
	if !ok || got != uint64(events) {
		t.Fatalf("perf stage counted %d, sink saw %d", got, events)
	}
}

func TestTracerOnlyStack(t *testing.T) {
	st, err := Build(Config{StackMode: memtrace.SlowStack})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hierarchy != nil {
		t.Fatal("no cache configured, hierarchy must be nil")
	}
	drive(t, st)
	if st.Transactions() != nil {
		t.Fatal("tracer-only stack must not capture transactions")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	cacheCfg := cachesim.PaperConfig()
	st := MustBuild(Config{Cache: &cacheCfg, CaptureTx: true})
	drive(t, st) // drive already closes once
	n := len(st.Transactions())
	if n == 0 {
		t.Fatal("no transactions")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(st.Transactions()) != n {
		t.Fatal("second Close must not re-drain or duplicate transactions")
	}
}

func TestBuildSinkErrorSurfacesOnClose(t *testing.T) {
	boom := errors.New("downstream full")
	bad := trace.TxSinkFunc(func([]trace.Transaction) error { return boom })
	cacheCfg := cachesim.PaperConfig()
	st := MustBuild(Config{Cache: &cacheCfg, TxSinks: []trace.TxSink{bad}})
	tr := st.Tracer
	a, _ := tr.HeapF64("a", "pipeline_test.go:2", 64*1024)
	for i := 0; i < a.Len(); i += 8 {
		a.Store(i, 1)
	}
	if err := st.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the sink error", err)
	}
}
