// Command nvbench converts `go test -bench` text output into the
// repository's benchmark-snapshot JSON, so performance baselines can be
// committed and diffed instead of pasted into commit messages.
//
// Usage:
//
//	go test -bench 'BenchmarkPipeline' ./internal/pipeline | nvbench -out BENCH_PIPELINE.json
//	nvbench -in bench.txt              # parse a saved run, JSON to stdout
//
// When -out is set the raw benchmark text is echoed to stdout, so the
// tool is transparent in a pipeline.  The snapshot records the run
// environment (goos/goarch/cpu/packages) and, per benchmark, the
// iteration count and every reported metric (ns/op, B/op, custom
// b.ReportMetric units) keyed by unit.  `make bench-snapshot` wires the
// pipeline benchmarks through it.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nvscavenger/internal/cli"
)

// snapshotSchemaVersion versions the BENCH_PIPELINE.json shape; bump it
// on any incompatible field change so downstream diff tooling can reject
// snapshots it does not understand.
const snapshotSchemaVersion = 1

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Goos          string `json:"goos,omitempty"`
	Goarch        string `json:"goarch,omitempty"`
	CPU           string `json:"cpu,omitempty"`
	// Packages lists every `pkg:` header seen, in input order.
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line.  Metrics maps unit to value — "ns/op"
// always, plus "B/op"/"allocs/op" under -benchmem and any custom
// b.ReportMetric units; encoding/json renders the keys sorted, so the
// same run serializes to the same bytes.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() { cli.Main("nvbench", run) }

func run(args []string, out io.Writer) error {
	fs := cli.NewFlagSet("nvbench")
	in := fs.String("in", "", "read benchmark text from this file instead of stdin")
	outPath := fs.String("out", "", "write the JSON snapshot to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var data []byte
	var err error
	if *in != "" {
		data, err = os.ReadFile(*in)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	snap, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return errors.New("no benchmark result lines in input")
	}
	if *outPath != "" {
		// Stay transparent in a pipeline: the bench text the user asked
		// for still reaches stdout, the snapshot goes to the file.
		fmt.Fprint(out, string(data))
		return cli.WriteValueJSONFile(*outPath, snap)
	}
	return cli.EncodeJSON(out, snap)
}

// Parse reads `go test -bench` text and returns the snapshot.  Header
// lines (goos/goarch/cpu/pkg) fill the environment fields; Benchmark*
// result lines become entries; a FAIL line fails the parse, because a
// snapshot of a failed run would record garbage as a baseline.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{SchemaVersion: snapshotSchemaVersion}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Packages = append(snap.Packages, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "FAIL"):
			return nil, fmt.Errorf("input records a failed run: %s", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseResult parses one result line:
//
//	BenchmarkPipelineThroughput/batched-8   37   31415926 ns/op   524288 tx
//
// i.e. name[-procs], iteration count, then value/unit pairs.
func parseResult(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:   1,
		Metrics: make(map[string]float64, (len(fields)-2)/2),
	}
	// go test appends -GOMAXPROCS to the name whenever it exceeds 1.
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: bad metric value %q: %w", line, fields[i], err)
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, nil
}
