package trace

import (
	"bufio"
	"compress/gzip"
	"io"
)

// Compressed trace support.  §III-D notes that even compressed trace files
// are slow to post-process — the design argument for on-the-fly analysis —
// but compressed traces remain the right interchange format for the power
// simulator's replay mode, so both writer and reader support gzip.  The
// reader detects compression automatically from the stream magic.

// NewCompressedAccessWriter returns a Writer producing a gzip-compressed
// KindAccess stream.  Close flushes and finishes the gzip stream (the
// underlying writer is not closed).
func NewCompressedAccessWriter(w io.Writer) *Writer {
	gz := gzip.NewWriter(w)
	cw := NewAccessWriter(gz)
	cw.closer = gz
	return cw
}

// NewCompressedTransactionWriter returns a Writer producing a
// gzip-compressed KindTransaction stream.
func NewCompressedTransactionWriter(w io.Writer) *Writer {
	gz := gzip.NewWriter(w)
	cw := NewTransactionWriter(gz)
	cw.closer = gz
	return cw
}

// gzipMagic is the two-byte gzip stream signature.
var gzipMagic = []byte{0x1f, 0x8b}

// maybeDecompress peeks at the stream and interposes a gzip reader when the
// content is compressed.
func maybeDecompress(br *bufio.Reader) (*bufio.Reader, error) {
	head, err := br.Peek(2)
	if err != nil {
		// Too short even for a magic: let the header parser report it.
		return br, nil
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	gz, err := gzip.NewReader(br)
	if err != nil {
		return nil, err
	}
	return bufio.NewReaderSize(gz, 1<<16), nil
}
