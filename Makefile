GO ?= go

.PHONY: ci vet build test race race-obs report

ci: vet build race-obs race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The metrics registry and the run engine are the two packages whose hot
# paths are exercised concurrently; run them race-enabled twice so the
# schedule varies between runs.
race-obs:
	$(GO) test -race -count=2 ./internal/obs ./internal/runner

report:
	$(GO) run ./cmd/nvreport
