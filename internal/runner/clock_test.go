package runner

import (
	"context"
	"sync"
	"testing"
	"time"

	"nvscavenger/internal/obs"
)

// steppedClock advances a fixed amount on every read, so each run's
// start/end pair spans exactly one step.
func steppedClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(step)
		return now
	}
}

// TestWithClockDeterministicWallMetrics drives the engine under a stepped
// fake clock: every wall measurement, the wall summary and the published
// wall histograms come out exact, independent of real time and scheduling.
func TestWithClockDeterministicWallMetrics(t *testing.T) {
	const step = 250 * time.Millisecond
	reg := obs.NewRegistry()
	// Jobs: 1 serializes runs, so consecutive clock reads pair up as one
	// run's start and end.
	e := New(Config{Jobs: 1, Metrics: reg}, WithClock(steppedClock(step)))

	fn := func(ctx context.Context) (any, uint64, error) { return nil, 1000, nil }
	apps := []string{"gtc", "s3d", "nek"}
	for _, app := range apps {
		if _, err := e.Do(context.Background(), key(app), fn); err != nil {
			t.Fatal(err)
		}
	}

	m := e.Metrics()
	if len(m.Runs) != len(apps) {
		t.Fatalf("runs = %d, want %d", len(m.Runs), len(apps))
	}
	for _, r := range m.Runs {
		if r.Wall != step {
			t.Errorf("run %s: wall = %v, want exactly %v", r.Key, r.Wall, step)
		}
		if got, want := r.RefsPerSec(), 1000/step.Seconds(); got != want {
			t.Errorf("run %s: refs/sec = %v, want %v", r.Key, got, want)
		}
	}

	ws := m.WallSummary()
	if ws.Count() != len(apps) || ws.Total() != 0.75 || ws.Mean() != 0.25 {
		t.Errorf("wall summary count/total/mean = %d/%v/%v, want 3/0.75/0.25",
			ws.Count(), ws.Total(), ws.Mean())
	}
	if ws.Min() != 0.25 || ws.Max() != 0.25 {
		t.Errorf("wall summary min/max = %v/%v, want 0.25/0.25", ws.Min(), ws.Max())
	}

	// The published histograms see the same exact values.
	for _, app := range apps {
		h := reg.Histogram("runner_run_wall_seconds", obs.SecondsBuckets,
			obs.L("key", key(app).String()))
		if h.Count() != 1 || h.Sum() != 0.25 {
			t.Errorf("%s wall histogram count/sum = %d/%v, want 1/0.25", app, h.Count(), h.Sum())
		}
	}
}

// TestWithClockNilKeepsDefault pins the nil-safety contract.
func TestWithClockNilKeepsDefault(t *testing.T) {
	e := New(Config{Jobs: 1}, WithClock(nil))
	if e.now == nil {
		t.Fatal("nil clock must keep the default")
	}
	if _, err := e.Do(context.Background(), key("gtc"),
		func(ctx context.Context) (any, uint64, error) { return nil, 1, nil }); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); len(m.Runs) != 1 || m.Runs[0].Wall < 0 {
		t.Fatalf("default clock produced bad run metrics: %+v", m.Runs)
	}
}
