package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// initFixtureRepo builds a throwaway git repository with one committed
// file and returns its path.
func initFixtureRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t",
		)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %s: %v\n%s", strings.Join(args, " "), err, out)
		}
	}
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	git("init", "-q", "-b", "main")
	write("pkg/a.go", "package pkg\n")
	write("pkg/b.go", "package pkg\n")
	git("add", ".")
	git("commit", "-q", "-m", "seed")
	return dir
}

func TestChangedFiles(t *testing.T) {
	dir := initFixtureRepo(t)

	changed, err := ChangedFiles(dir, "HEAD")
	if err != nil {
		t.Fatalf("ChangedFiles on clean tree: %v", err)
	}
	if len(changed) != 0 {
		t.Errorf("clean tree should report no changes, got %v", changed)
	}

	if err := os.WriteFile(filepath.Join(dir, "pkg", "a.go"), []byte("package pkg\n\nvar X = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err = ChangedFiles(dir, "HEAD")
	if err != nil {
		t.Fatalf("ChangedFiles after edit: %v", err)
	}
	if len(changed) != 1 || !changed["pkg/a.go"] {
		t.Errorf("want exactly pkg/a.go changed, got %v", changed)
	}
}

func TestChangedFilesBadRef(t *testing.T) {
	dir := initFixtureRepo(t)
	if _, err := ChangedFiles(dir, "no-such-ref"); err == nil {
		t.Fatal("want error for an unknown base ref")
	}
}
