package experiments

import (
	"context"
	"fmt"
	"strings"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/pipeline"
	"nvscavenger/internal/runner"
)

// SamplingRow measures what instruction sampling costs the analysis at one
// sampling period — the study behind §III-D's rejection of sampling:
// "sampling can lead to the loss of access information for many memory
// objects, which in turn causes improper data placement."
type SamplingRow struct {
	Period int
	// ObservedRefs is the number of references the sampled tool saw.
	ObservedRefs uint64
	// LostObjects counts global+heap objects that the full run observed in
	// the main loop but the sampled run missed entirely.
	LostObjects  int
	TotalObjects int
	// StackRatioError is the relative error of the sampled Table V stack
	// ratio against the full run's.
	StackRatioError float64
	// PlacementDiffs counts objects whose placement decision changed
	// versus the full run under the category-2 policy.
	PlacementDiffs int
}

// SamplingStudy runs one app at several sampling periods and quantifies the
// information loss against the full (period 1) instrumentation.  The
// sampled runs are scheduled on the session's engine — keyed by period —
// so they execute in parallel and re-requesting a period is free.
func (s *Session) SamplingStudy(app string, periods []int) ([]SamplingRow, error) {
	type runResult struct {
		refs    uint64
		active  map[string]bool
		targets map[string]core.Target
		ratio   float64
	}

	runAt := func(ctx context.Context, period int) (runResult, error) {
		v, err := s.do(ctx, s.key(app, "sampling", fmt.Sprintf("period-%d", period)),
			func(ctx context.Context) (any, uint64, error) {
				a, err := apps.New(app, s.opts.Scale)
				if err != nil {
					return nil, 0, err
				}
				stack, err := pipeline.Build(pipeline.Config{
					StackMode: memtrace.FastStack,
					Sample:    memtrace.SampleSpec{Mode: memtrace.SamplePeriodic, Rate: uint64(period)},
				})
				if err != nil {
					return nil, 0, err
				}
				tr := stack.Tracer
				if err := apps.RunContext(ctx, a, tr, s.opts.Iterations); err != nil {
					return nil, 0, err
				}
				if err := stack.Close(); err != nil {
					return nil, 0, err
				}
				res := runResult{
					refs:    tr.Sampled,
					active:  map[string]bool{},
					targets: map[string]core.Target{},
					ratio:   core.StackAnalysis(tr).OverallRatio,
				}
				plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
				for _, adv := range plan.Advices {
					if adv.Object.LoopStats().Refs() > 0 {
						res.active[adv.Object.Name] = true
					}
					res.targets[adv.Object.Name] = adv.Target
				}
				return res, tr.Sampled, nil
			})
		if err != nil {
			return runResult{}, err
		}
		return v.(runResult), nil
	}

	full, err := runAt(s.ctx(), 1)
	if err != nil {
		return nil, err
	}

	return runner.Collect(s.ctx(), periods, func(ctx context.Context, period int) (SamplingRow, error) {
		res := full
		if period > 1 {
			var err error
			res, err = runAt(ctx, period)
			if err != nil {
				return SamplingRow{}, err
			}
		}
		row := SamplingRow{Period: period, ObservedRefs: res.refs, TotalObjects: len(full.active)}
		for name := range full.active {
			if !res.active[name] {
				row.LostObjects++
			}
		}
		for name, target := range full.targets {
			if res.targets[name] != target {
				row.PlacementDiffs++
			}
		}
		// relErr falls back to the absolute error when the full run's ratio
		// is 0, so a sampled run that reports stack activity the full run
		// did not see scores its own magnitude instead of a silent 0.
		row.StackRatioError = relErr(res.ratio, full.ratio)
		return row, nil
	})
}

// FormatSamplingStudy renders the study.
func FormatSamplingStudy(app string, rows []SamplingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampling study on %s (§III-D: why the tool observes every reference)\n", app)
	fmt.Fprintf(&b, "%8s %14s %18s %18s %16s\n",
		"period", "observed refs", "objects lost", "stack-ratio err", "placement diffs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14d %10d of %-4d %17.1f%% %16d\n",
			r.Period, r.ObservedRefs, r.LostObjects, r.TotalObjects,
			r.StackRatioError*100, r.PlacementDiffs)
	}
	fmt.Fprintf(&b, "aggregate ratios survive sampling, but object coverage does not: the lost\n")
	fmt.Fprintf(&b, "objects get no placement decision at all — the improper-placement risk §III-D names.\n")
	return b.String()
}
