// Placement study: run the CAM proxy under instrumentation and derive
// hybrid DRAM/NVRAM placement advice for both NVRAM categories, with PCRAM
// endurance estimates for everything placed in NVRAM.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/core"
	"nvscavenger/internal/dramsim"
	"nvscavenger/internal/memtrace"

	_ "nvscavenger/internal/apps/cammini"
)

func main() {
	app, err := apps.New("cam", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	tr := memtrace.New(memtrace.Config{StackMode: memtrace.FastStack})
	if err := apps.Run(app, tr, 10); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s ==\n%s\n\n", app.Name(), app.Description())

	for _, cat := range []core.Category{core.Category2, core.Category1} {
		policy := core.DefaultPolicy(cat)
		plan := core.Plan(tr, policy)
		fmt.Printf("--- %s ---\n", cat)
		fmt.Printf("NVRAM %7.2f MB | migratable %7.2f MB | DRAM %7.2f MB | NVRAM share %.1f%%\n",
			mb(plan.NVRAMBytes), mb(plan.MigratableBytes), mb(plan.DRAMBytes), plan.NVRAMShare*100)
		for _, adv := range plan.Advices {
			if adv.Object.Size < 64*1024 {
				continue // only the large objects for readability
			}
			fmt.Printf("  %-16s %8.2f MB -> %-10s %s\n",
				adv.Object.Name, mb(adv.Object.Size), adv.Target, adv.Reason)
		}
		fmt.Println()
	}

	// Endurance: even the category-friendly objects must survive the write
	// stream.  The estimate assumes ideal wear-levelling within the object.
	fmt.Println("--- PCRAM endurance for category-2 NVRAM placements ---")
	plan := core.Plan(tr, core.DefaultPolicy(core.Category2))
	prof := dramsim.PCRAM()
	for _, adv := range plan.Advices {
		if adv.Target != core.TargetNVRAM || adv.Object.Size < 64*1024 {
			continue
		}
		est := core.Endurance(adv.Object, prof, tr.MainLoopIterations())
		fmt.Printf("  %-16s %10.5f writes/byte/step -> %.2e steps to wear-out\n",
			est.ObjectName, est.WritesPerBytePerStep, est.LifetimeSteps)
	}
}

func mb(v uint64) float64 { return float64(v) / (1 << 20) }
