package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestCompressedTransactionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedTransactionWriter(&buf)
	in := []Transaction{
		{Addr: 0x1000, Write: false, Cycle: 1},
		{Addr: 0x2040, Write: true, Cycle: 2},
		{Addr: 0xffff_0000, Write: false, Cycle: 3},
	}
	for _, tx := range in {
		if err := w.WriteTransaction(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream must actually be gzip.
	raw := buf.Bytes()
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("stream is not gzip-compressed")
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindTransaction {
		t.Fatalf("kind = %d", r.Kind())
	}
	for i, want := range in {
		got, err := r.ReadTransaction()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadTransaction(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCompressedAccessRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedAccessWriter(&buf)
	for i := 0; i < 1000; i++ {
		if err := w.WriteAccess(Access{Addr: uint64(i) * 8, Size: 8, Op: Op(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.ReadAccess()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("read %d records, want 1000", n)
	}
}

func TestCompressionActuallyShrinksRegularTraces(t *testing.T) {
	var plain, compressed bytes.Buffer
	pw := NewTransactionWriter(&plain)
	cw := NewCompressedTransactionWriter(&compressed)
	for i := 0; i < 20000; i++ {
		tx := Transaction{Addr: uint64(i%256) * 64, Write: i%4 == 0, Cycle: uint64(i)}
		if err := pw.WriteTransaction(tx); err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteTransaction(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if compressed.Len()*2 > plain.Len() {
		t.Fatalf("compression ineffective: %d vs %d bytes", compressed.Len(), plain.Len())
	}
}

func TestUncompressedStillReadable(t *testing.T) {
	var buf bytes.Buffer
	w := NewTransactionWriter(&buf)
	if err := w.WriteTransaction(Transaction{Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadTransaction(); err != nil {
		t.Fatal(err)
	}
}

func TestShortStreamStillErrorsCleanly(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0x1f})); err == nil {
		t.Fatal("1-byte stream must error")
	}
	// A stream that has the gzip magic but is not valid gzip.
	if _, err := NewReader(bytes.NewReader([]byte{0x1f, 0x8b, 0x00, 0x00})); err == nil {
		t.Fatal("corrupt gzip must error")
	}
}

// Property: compressed and plain round trips agree for arbitrary records.
func TestQuickCompressedEqualsPlain(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		var pb, cb bytes.Buffer
		pw := NewTransactionWriter(&pb)
		cw := NewCompressedTransactionWriter(&cb)
		for i := 0; i < n; i++ {
			tx := Transaction{Addr: addrs[i], Write: writes[i], Cycle: uint64(i)}
			if pw.WriteTransaction(tx) != nil || cw.WriteTransaction(tx) != nil {
				return false
			}
		}
		if pw.Close() != nil || cw.Close() != nil {
			return false
		}
		pr, err1 := NewReader(&pb)
		cr, err2 := NewReader(&cb)
		if err1 != nil || err2 != nil {
			return false
		}
		for {
			a, ea := pr.ReadTransaction()
			b, eb := cr.ReadTransaction()
			if ea != eb && !(ea == io.EOF && eb == io.EOF) {
				return false
			}
			if ea == io.EOF {
				return true
			}
			if ea != nil || a != b {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
