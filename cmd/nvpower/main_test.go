package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAppMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"filtered to", "DDR3", "PCRAM", "STTRAM", "MRAM", "normalized", "row policy open-page"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDumpAndReplay(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "mem.trc")

	var out bytes.Buffer
	if err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "2", "-dump", trc}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trc); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}

	out.Reset()
	if err := run([]string{"-trace", trc, "-policy", "closed"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "replaying") || !strings.Contains(text, "closed-page") {
		t.Errorf("replay output incomplete:\n%s", text)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing source must error")
	}
	if err := run([]string{"-app", "gtc", "-trace", "x"}, &out); err == nil {
		t.Error("both sources must error")
	}
	if err := run([]string{"-app", "gtc", "-policy", "weird"}, &out); err == nil {
		t.Error("unknown policy must error")
	}
	if err := run([]string{"-trace", "/nonexistent/file.trc"}, &out); err == nil {
		t.Error("missing trace file must error")
	}
}

func TestRunDumpCompressed(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "mem.trc.gz")
	var out bytes.Buffer
	if err := run([]string{"-app", "gtc", "-scale", "0.05", "-iterations", "1", "-dump", trc}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("dump with .gz suffix must be gzip-compressed")
	}
	out.Reset()
	if err := run([]string{"-trace", trc}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replaying") {
		t.Error("compressed trace replay failed")
	}
}
