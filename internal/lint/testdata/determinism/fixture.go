// Package fixture exercises every determinism finding.  The test loads it
// under a synthetic import path inside the deterministic package set.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Stamp reads the wall clock in a deterministic package.
func Stamp() time.Time { return time.Now() }

// Pause couples results to scheduling.
func Pause() { time.Sleep(time.Millisecond) }

// Jitter draws from the shared global rand state.
func Jitter() int { return rand.Intn(8) }

// Seeded is fine: a locally seeded source replays identically.
func Seeded() int { return rand.New(rand.NewSource(42)).Intn(8) }

// Dump emits report output from inside a map range.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys is fine: collect-then-sort never emits from inside the range.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
