// Package dramsim is the memory power simulator of the reproduction,
// modelled on DRAMSim2 (paper §IV).
//
// It has the three modules the paper describes:
//
//   - the memory system (MemorySystem), which interfaces to trace files or
//     to a full-system simulator and integrates the other two modules;
//   - the memory controller (controller), which regulates the flow of
//     transactions: address mapping, row policy, and bank state updates;
//   - the rank/bank module (bank), which enforces device timing and reports
//     the command events that the power model prices.
//
// The power model follows the Micron-style decomposition DRAMSim2 uses:
// burst power (the cost of reading/writing cells), background power,
// activation/precharge power, and refresh power.  Refresh power is zero for
// NVRAM; NVRAM cell arrays also contribute no standby leakage, while the
// peripheral circuitry (DIMM interface, row buffers, decoders) is assumed
// identical to DRAM's in both performance and power, as the paper assumes.
//
// For PCRAM the paper assumes the set current equals the (2x larger) reset
// current, making the estimate a power consumption upper bound; read and
// write currents of 40 mA and 150 mA are used, and the same values stand in
// for STTRAM and MRAM whose published data was too limited (§IV), again an
// upper bound.
package dramsim

import "fmt"

// DeviceProfile holds the timing and electrical parameters of one memory
// technology.  Latencies follow Table IV of the paper.
type DeviceProfile struct {
	Name string

	// ReadLatencyNS and WriteLatencyNS are the cell-array access latencies
	// (Table IV "real read/write latency").
	ReadLatencyNS  float64
	WriteLatencyNS float64
	// TRCDNS is the row-activate-to-column delay, TRPNS the precharge time;
	// both model the row-miss overhead and are peripheral-circuitry
	// properties assumed equal across technologies.
	TRCDNS float64
	TRPNS  float64
	// BurstNS is the data-bus occupancy of one 64-byte burst
	// (BL=8 on a 64-bit JEDEC bus at DDR3-1333 rate: 4 cycles x 1.5 ns).
	BurstNS float64

	// VDD is the supply voltage in volts.
	VDD float64
	// IReadMA and IWriteMA are the array read/write currents in mA.  As in
	// the Micron methodology DRAMSim2 implements, burst energy per access is
	// VDD * I * burst time: the current is drawn while the burst streams
	// over the bus, independent of the cell access latency.
	IReadMA  float64
	IWriteMA float64
	// IActPreMA is the current-equivalent of one activate/precharge pair,
	// integrated over TRCD+TRP.
	IActPreMA float64

	// PeripheralMW is the always-on background power of the peripheral
	// circuitry (identical across technologies by assumption).
	PeripheralMW float64
	// CellStandbyMW is the cell-array standby/leakage power; zero for
	// non-volatile arrays.
	CellStandbyMW float64
	// RefreshMW is the time-averaged refresh power; zero for NVRAM.
	RefreshMW float64

	// WriteEndurance is the per-cell write endurance (program/erase cycles
	// before wear-out); used by the endurance analysis, not by the power
	// model.  DRAM is effectively unlimited (1e16).
	WriteEndurance float64
}

// Validate checks the profile for physically meaningless values.
func (p DeviceProfile) Validate() error {
	if p.ReadLatencyNS <= 0 || p.WriteLatencyNS <= 0 {
		return fmt.Errorf("dramsim: %s: non-positive access latency", p.Name)
	}
	if p.BurstNS <= 0 {
		return fmt.Errorf("dramsim: %s: non-positive burst time", p.Name)
	}
	if p.VDD <= 0 {
		return fmt.Errorf("dramsim: %s: non-positive VDD", p.Name)
	}
	if p.IReadMA < 0 || p.IWriteMA < 0 || p.IActPreMA < 0 {
		return fmt.Errorf("dramsim: %s: negative current", p.Name)
	}
	if p.PeripheralMW < 0 || p.CellStandbyMW < 0 || p.RefreshMW < 0 {
		return fmt.Errorf("dramsim: %s: negative background power", p.Name)
	}
	return nil
}

// ReadEnergyPJ returns the burst energy of one read access in picojoules
// (mA x V x ns = pJ).
func (p DeviceProfile) ReadEnergyPJ() float64 {
	return p.VDD * p.IReadMA * p.BurstNS
}

// WriteEnergyPJ returns the burst energy of one write access in picojoules.
func (p DeviceProfile) WriteEnergyPJ() float64 {
	return p.VDD * p.IWriteMA * p.BurstNS
}

// ActPreEnergyPJ returns the energy of one activate/precharge pair.
func (p DeviceProfile) ActPreEnergyPJ() float64 {
	return p.VDD * p.IActPreMA * (p.TRCDNS + p.TRPNS)
}

// BackgroundMW returns the total standing power: peripheral circuitry plus
// cell-array standby plus averaged refresh.
func (p DeviceProfile) BackgroundMW() float64 {
	return p.PeripheralMW + p.CellStandbyMW + p.RefreshMW
}

// The four profiles of Table IV.  Electrical parameters: PCRAM read/write
// currents are the 40 mA / 150 mA values from §IV, reused for STTRAM and
// MRAM (upper bound).  DRAM currents approximate DDR3 IDD4 burst behaviour.
// Background components are calibrated so that the DRAM cell-standby +
// refresh share of total power matches the ">35% of memory subsystem power
// for memory-intensive workloads" figure from §I that the paper builds on.

// DDR3 returns the baseline DRAM profile (10 ns symmetric access).
func DDR3() DeviceProfile {
	return DeviceProfile{
		Name:           "DDR3",
		ReadLatencyNS:  10,
		WriteLatencyNS: 10,
		TRCDNS:         13.5,
		TRPNS:          13.5,
		BurstNS:        6,
		VDD:            1.5,
		IReadMA:        130,
		IWriteMA:       130,
		IActPreMA:      45,
		PeripheralMW:   700,
		CellStandbyMW:  185,
		RefreshMW:      85,
		WriteEndurance: 1e16,
	}
}

// PCRAM returns the phase-change memory profile (20 ns read, 100 ns write).
func PCRAM() DeviceProfile {
	return DeviceProfile{
		Name:           "PCRAM",
		ReadLatencyNS:  20,
		WriteLatencyNS: 100,
		TRCDNS:         13.5,
		TRPNS:          13.5,
		BurstNS:        6,
		VDD:            1.5,
		IReadMA:        40,
		IWriteMA:       150,
		IActPreMA:      45,
		PeripheralMW:   700,
		CellStandbyMW:  0,
		RefreshMW:      0,
		WriteEndurance: 5e9, // between 1e8 and 1e9.7 per §II
	}
}

// STTRAM returns the spin-torque transfer memory profile (10/20 ns).
func STTRAM() DeviceProfile {
	return DeviceProfile{
		Name:           "STTRAM",
		ReadLatencyNS:  10,
		WriteLatencyNS: 20,
		TRCDNS:         13.5,
		TRPNS:          13.5,
		BurstNS:        6,
		VDD:            1.5,
		IReadMA:        40,
		IWriteMA:       150,
		IActPreMA:      45,
		PeripheralMW:   700,
		CellStandbyMW:  0,
		RefreshMW:      0,
		WriteEndurance: 1e12,
	}
}

// MRAM returns the toggle-MRAM profile (12/12 ns).
func MRAM() DeviceProfile {
	return DeviceProfile{
		Name:           "MRAM",
		ReadLatencyNS:  12,
		WriteLatencyNS: 12,
		TRCDNS:         13.5,
		TRPNS:          13.5,
		BurstNS:        6,
		VDD:            1.5,
		IReadMA:        40,
		IWriteMA:       150,
		IActPreMA:      45,
		PeripheralMW:   700,
		CellStandbyMW:  0,
		RefreshMW:      0,
		WriteEndurance: 1e15,
	}
}

// Profiles returns the four Table IV technologies in the paper's order.
func Profiles() []DeviceProfile {
	return []DeviceProfile{DDR3(), PCRAM(), STTRAM(), MRAM()}
}
