package nekmini

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func runNek(t *testing.T, scale float64, iters int, mode memtrace.StackMode) (*App, *memtrace.Tracer) {
	t.Helper()
	app := New(scale)
	tr := memtrace.New(memtrace.Config{StackMode: mode})
	if err := apps.Run(app, tr, iters); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRegistered(t *testing.T) {
	a, err := apps.New("nek5000", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "nek5000" {
		t.Fatalf("name = %q", a.Name())
	}
	if a.Description() == "" {
		t.Fatal("empty description")
	}
}

// TestTableVCalibration checks the paper's stack numbers for Nek5000:
// ~75.6% of references hit the stack with a read/write ratio of ~6.33.
func TestTableVCalibration(t *testing.T) {
	_, tr := runNek(t, 0.25, 10, memtrace.FastStack)
	iters := tr.MainLoopIterations()
	st := tr.SegmentTotals(trace.SegStack, 1, iters)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, iters)
	hp := tr.SegmentTotals(trace.SegHeap, 1, iters)

	total := st.Total() + gl.Total() + hp.Total()
	share := float64(st.Total()) / float64(total)
	if share < 0.70 || share > 0.81 {
		t.Errorf("stack reference share = %.3f, want ~0.756 (band 0.70-0.81)", share)
	}
	ratio := st.ReadWriteRatio()
	if ratio < 5.3 || ratio > 7.4 {
		t.Errorf("stack read/write ratio = %.2f, want ~6.33 (band 5.3-7.4)", ratio)
	}
}

// TestFootprintShape checks the Figure 3/7 structure: ~24.3% of the
// footprint untouched in the main loop, ~7.1% read-only, and a nonempty
// population of R/W > 50 objects.
func TestFootprintShape(t *testing.T) {
	_, tr := runNek(t, 0.25, 10, memtrace.FastStack)

	var totalBytes, untouched, readOnly, highRatio uint64
	for _, o := range tr.Objects() {
		if o.Segment == trace.SegStack {
			continue
		}
		totalBytes += o.Size
		if o.TouchedIterations() == 0 {
			untouched += o.Size
		}
		if o.LoopReadOnly() {
			readOnly += o.Size
		} else if o.LoopReadWriteRatio() > 50 {
			highRatio += o.Size
		}
	}
	uf := float64(untouched) / float64(totalBytes)
	if uf < 0.18 || uf > 0.30 {
		t.Errorf("untouched fraction = %.3f, want ~0.243", uf)
	}
	rf := float64(readOnly) / float64(totalBytes)
	if rf < 0.04 || rf > 0.12 {
		t.Errorf("read-only fraction = %.3f, want ~0.071", rf)
	}
	if highRatio == 0 {
		t.Error("expected mass matrices in the R/W > 50 population")
	}
}

func TestMassMatrixRatioAbove50(t *testing.T) {
	_, tr := runNek(t, 0.2, 10, memtrace.FastStack)
	found := false
	for _, o := range tr.Objects() {
		if o.Name == "bm1" {
			found = true
			if r := o.LoopReadWriteRatio(); r < 50 {
				t.Errorf("bm1 loop read/write ratio = %.1f, want > 50", r)
			}
		}
	}
	if !found {
		t.Fatal("bm1 object missing")
	}
}

func TestUnevenTouch(t *testing.T) {
	_, tr := runNek(t, 0.2, 10, memtrace.FastStack)
	byName := map[string]*memtrace.Object{}
	for _, o := range tr.Objects() {
		byName[o.Name] = o
	}
	if o := byName["diag_setup"]; o == nil || o.TouchedIterations() != 0 {
		t.Error("diag_setup must be untouched in the main loop")
	}
	if o := byName["mpi_agg"]; o == nil || o.TouchedIterations() != 0 {
		t.Error("mpi_agg must only be touched in post-processing")
	}
	if o := byName["turb_hist"]; o == nil || o.TouchedIterations() != 2 {
		t.Errorf("turb_hist should be touched in exactly 2 iterations")
	}
	if o := byName["filt"]; o == nil || o.TouchedIterations() != 2 {
		// iterations 4 and 8 of 10
		t.Errorf("filt should be touched in iterations 4 and 8 only")
	}
	if o := byName["vx"]; o == nil || o.TouchedIterations() != 10 {
		t.Error("vx must be touched every iteration")
	}
}

func TestShortTermHeapRecycled(t *testing.T) {
	_, tr := runNek(t, 0.15, 5, memtrace.FastStack)
	count := 0
	for _, o := range tr.HeapObjects() {
		if o.Name == "gs_stage" {
			count++
			if !o.Dead {
				t.Error("gs_stage must be freed at iteration end")
			}
			if o.TouchedIterations() != 5 {
				t.Errorf("gs_stage touched %d iterations, want 5 (same signature each step)", o.TouchedIterations())
			}
		}
	}
	if count != 1 {
		t.Fatalf("gs_stage objects = %d, want 1 (per-signature identity)", count)
	}
}

func TestSlowModeRoutines(t *testing.T) {
	_, tr := runNek(t, 0.1, 3, memtrace.SlowStack)
	routines := tr.StackObjects()
	if len(routines) < 5 {
		t.Fatalf("expected several routine frames, got %d", len(routines))
	}
	var axHelm *memtrace.Object
	for _, o := range routines {
		if o.Name == "ax_helm" {
			axHelm = o
		}
	}
	if axHelm == nil {
		t.Fatal("ax_helm frame missing")
	}
	tot := uint64(0)
	for _, o := range routines {
		tot += o.Total().Refs()
	}
	if float64(axHelm.Total().Refs())/float64(tot) < 0.5 {
		t.Error("the element operator should dominate stack references")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a1, tr1 := runNek(t, 0.1, 3, memtrace.FastStack)
	a2, tr2 := runNek(t, 0.1, 3, memtrace.FastStack)
	if a1.checksum != a2.checksum {
		t.Fatal("checksum must be deterministic")
	}
	s1 := tr1.SegmentTotals(trace.SegStack, 1, 3)
	s2 := tr2.SegmentTotals(trace.SegStack, 1, 3)
	if s1 != s2 {
		t.Fatal("access stream must be deterministic")
	}
}

func TestMinimumScaleClamped(t *testing.T) {
	app := New(0.000001)
	if app.elements < 8 {
		t.Fatal("element count must be clamped")
	}
}
