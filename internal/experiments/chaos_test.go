package experiments

import (
	"strings"
	"testing"

	"nvscavenger/internal/faults"
)

// TestWorkerFaultDegradesSweep: with every run crashing, a degraded session
// still completes the exhibit — an empty table plus one recorded failure per
// app — instead of aborting on the first error.
func TestWorkerFaultDegradesSweep(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3),
		WithFaults(faults.MustParse("worker:every=1")))
	rows, err := s.Table1()
	if err != nil {
		t.Fatalf("degraded Table1: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("Table1 rows = %d with every run crashing, want 0", len(rows))
	}
	if !s.Degraded() {
		t.Fatal("session with armed faults must report Degraded")
	}
	errs := s.RunErrors()
	if len(errs) != len(AppNames) {
		t.Fatalf("RunErrors = %d entries, want one per app (%d): %v", len(errs), len(AppNames), errs)
	}
	for _, re := range errs {
		if !strings.Contains(re.Err, "worker crash") {
			t.Errorf("RunErrors[%s] = %q, want a worker-crash annotation", re.Key, re.Err)
		}
	}
}

// TestWorkerPanicFaultIsRecovered: panic-mode worker faults must be
// converted to recorded errors by the engine's recovery layer, not crash
// the sweep.
func TestWorkerPanicFaultIsRecovered(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3), WithApps("gtc"),
		WithFaults(faults.MustParse("worker:every=1,mode=panic")))
	rows, err := s.Table1()
	if err != nil {
		t.Fatalf("degraded Table1: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("Table1 rows = %d, want 0", len(rows))
	}
	errs := s.RunErrors()
	if len(errs) != 1 || !strings.Contains(errs[0].Err, "recovered panic") {
		t.Fatalf("RunErrors = %v, want one recovered-panic annotation", errs)
	}
}

// TestChaosDeterministicAcrossJobs is the scheduling-independence check for
// the whole degraded path: the same seeded fault spec must fail the same
// runs — and leave the same survivors — whether the sweep executes
// sequentially or on a worker pool.
func TestChaosDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) ([]Table1Row, []RunError) {
		s := NewSession(WithScale(0.05), WithIterations(3), WithJobs(jobs),
			WithFaults(faults.MustParse("worker:prob=0.5,seed=9")))
		rows, err := s.Table1()
		if err != nil {
			t.Fatalf("jobs=%d Table1: %v", jobs, err)
		}
		return rows, s.RunErrors()
	}
	seqRows, seqErrs := run(1)
	parRows, parErrs := run(4)

	if len(seqErrs) == 0 || len(seqErrs) == len(AppNames) {
		t.Fatalf("want a partial failure set for this seed, got %d of %d failed", len(seqErrs), len(AppNames))
	}
	if len(seqRows) != len(parRows) {
		t.Fatalf("survivor rows: %d (jobs=1) vs %d (jobs=4)", len(seqRows), len(parRows))
	}
	for i := range seqRows {
		if seqRows[i] != parRows[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, seqRows[i], parRows[i])
		}
	}
	if len(seqErrs) != len(parErrs) {
		t.Fatalf("RunErrors: %d (jobs=1) vs %d (jobs=4)\nseq: %v\npar: %v", len(seqErrs), len(parErrs), seqErrs, parErrs)
	}
	for i := range seqErrs {
		if seqErrs[i] != parErrs[i] {
			t.Errorf("RunErrors[%d] differs: %+v vs %+v", i, seqErrs[i], parErrs[i])
		}
	}
}

// TestSinkFaultAnnotatesEveryApp: an always-tripping sink tap fails each
// run at its first flush, and the degraded session names every app.
func TestSinkFaultAnnotatesEveryApp(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3), WithApps("gtc", "s3d"),
		WithFaults(faults.MustParse("sink:every=1,seed=7")))
	rows, err := s.Table5()
	if err != nil {
		t.Fatalf("degraded Table5: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("Table5 rows = %d with every flush failing, want 0", len(rows))
	}
	if got := len(s.RunErrors()); got != 2 {
		t.Fatalf("RunErrors = %d entries, want 2: %v", got, s.RunErrors())
	}
}

// TestHealthySessionIsNotDegraded: without faults or WithDegraded the
// legacy contract holds — no degradation markers, no recorded failures.
func TestHealthySessionIsNotDegraded(t *testing.T) {
	s := NewSession(WithScale(0.05), WithIterations(3), WithApps("gtc"))
	if _, err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() || len(s.RunErrors()) != 0 {
		t.Fatalf("healthy session: Degraded=%v RunErrors=%v", s.Degraded(), s.RunErrors())
	}
}
