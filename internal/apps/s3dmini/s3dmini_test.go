package s3dmini

import (
	"testing"

	"nvscavenger/internal/apps"
	"nvscavenger/internal/memtrace"
	"nvscavenger/internal/trace"
)

func runS3D(t *testing.T, scale float64, iters int, mode memtrace.StackMode) (*App, *memtrace.Tracer) {
	t.Helper()
	app := New(scale)
	tr := memtrace.New(memtrace.Config{StackMode: mode})
	if err := apps.Run(app, tr, iters); err != nil {
		t.Fatal(err)
	}
	return app, tr
}

func TestRegistered(t *testing.T) {
	a, err := apps.New("s3d", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "s3d" {
		t.Fatalf("name = %q", a.Name())
	}
}

// TestTableVCalibration checks S3D's stack numbers: ~63.1% stack reference
// share, read/write ratio ~6.04.
func TestTableVCalibration(t *testing.T) {
	_, tr := runS3D(t, 0.25, 10, memtrace.FastStack)
	iters := tr.MainLoopIterations()
	st := tr.SegmentTotals(trace.SegStack, 1, iters)
	gl := tr.SegmentTotals(trace.SegGlobal, 1, iters)
	hp := tr.SegmentTotals(trace.SegHeap, 1, iters)

	total := st.Total() + gl.Total() + hp.Total()
	share := float64(st.Total()) / float64(total)
	if share < 0.56 || share > 0.70 {
		t.Errorf("stack reference share = %.3f, want ~0.631", share)
	}
	if r := st.ReadWriteRatio(); r < 5.1 || r > 7.0 {
		t.Errorf("stack r/w ratio = %.2f, want ~6.04", r)
	}
}

func TestRateTableReadOnly(t *testing.T) {
	_, tr := runS3D(t, 0.1, 5, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Name == "rate_table" {
			if !o.LoopReadOnly() {
				t.Fatal("rate_table must be read-only during the loop")
			}
			if o.LoopStats().Reads == 0 {
				t.Fatal("rate_table must be read heavily")
			}
			return
		}
	}
	t.Fatal("rate_table missing")
}

// TestSmallUntouchedFraction: only the restart staging buffer (~1-3% of
// the footprint) is untouched during the main loop.
func TestSmallUntouchedFraction(t *testing.T) {
	_, tr := runS3D(t, 0.25, 5, memtrace.FastStack)
	var totalBytes, untouched uint64
	for _, o := range tr.Objects() {
		if o.Segment == trace.SegStack {
			continue
		}
		totalBytes += o.Size
		if o.TouchedIterations() == 0 {
			untouched += o.Size
		}
	}
	uf := float64(untouched) / float64(totalBytes)
	if uf > 0.06 {
		t.Errorf("untouched fraction = %.3f, want small (~0.014-0.05)", uf)
	}
	if untouched == 0 {
		t.Error("qsave restart buffer should be untouched in the loop")
	}
}

// TestConstantReferenceRates: species field reference counts are identical
// across iterations (Figure 10).
func TestConstantReferenceRates(t *testing.T) {
	_, tr := runS3D(t, 0.1, 6, memtrace.FastStack)
	for _, o := range tr.Objects() {
		if o.Segment != trace.SegHeap || o.LoopStats().Refs() == 0 {
			continue
		}
		base := o.Iter(1).Refs()
		for it := 2; it <= 6; it++ {
			if got := o.Iter(it).Refs(); got != base {
				t.Errorf("%s iteration %d refs = %d, want %d", o.Name, it, got, base)
			}
		}
	}
}

func TestSpeciesStayPhysical(t *testing.T) {
	app, _ := runS3D(t, 0.1, 10, memtrace.FastStack)
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapAllocatablesPresent(t *testing.T) {
	_, tr := runS3D(t, 0.05, 2, memtrace.FastStack)
	names := map[string]bool{}
	for _, o := range tr.HeapObjects() {
		names[o.Name] = true
	}
	for _, want := range []string{"yspecies_0", "yspecies_8", "rhs_0", "u_vel", "temp", "pressure"} {
		if !names[want] {
			t.Errorf("heap allocatable %q missing", want)
		}
	}
}

func TestSlowModeChemistryDominates(t *testing.T) {
	_, tr := runS3D(t, 0.05, 2, memtrace.SlowStack)
	var chem, total uint64
	for _, o := range tr.StackObjects() {
		refs := o.Total().Refs()
		total += refs
		if o.Name == "reaction_rate" {
			chem = refs
		}
	}
	if total == 0 || float64(chem)/float64(total) < 0.8 {
		t.Errorf("reaction_rate carries %d of %d stack refs; expected dominance", chem, total)
	}
}

func TestDeterminism(t *testing.T) {
	a1, _ := runS3D(t, 0.05, 3, memtrace.FastStack)
	a2, _ := runS3D(t, 0.05, 3, memtrace.FastStack)
	if a1.checksum != a2.checksum {
		t.Fatal("runs must be deterministic")
	}
}
